"""Boosted tree ensembles.

The paper reports that "more complex techniques, e.g. larger ensemble
methods do not produce noticeable improvements in accuracy" over the SVM
(Section 1).  These implementations exist to reproduce that negative
result — see ``benchmarks/bench_ablation_ensembles.py``:

- :class:`AdaBoostClassifier` — SAMME discrete AdaBoost over shallow CART
  trees (sample re-weighting implemented by weighted resampling, which the
  plain tree learner supports without modification);
- :class:`GradientBoostingClassifier` — binomial-deviance gradient boosting
  with regression on the residuals via class-probability trees.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_xy
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import ensure_rng


class AdaBoostClassifier:
    """Discrete AdaBoost (SAMME with two classes) over CART stumps/trees."""

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 2,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.alphas_: list[float] = []
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        x, y = check_xy(x, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("AdaBoostClassifier requires binary labels")
        signs = np.where(y == self.classes_[1], 1.0, -1.0)
        rng = ensure_rng(self.seed)
        n = len(x)
        weights = np.full(n, 1.0 / n)
        self.estimators_, self.alphas_ = [], []
        for _ in range(self.n_estimators):
            # Weighted resampling realises the weight distribution with an
            # unweighted base learner.
            rows = rng.choice(n, size=n, replace=True, p=weights)
            tree = DecisionTreeClassifier(max_depth=self.max_depth, seed=rng)
            tree.fit(x[rows], y[rows])
            pred = np.where(tree.predict(x) == self.classes_[1], 1.0, -1.0)
            err = float(np.sum(weights * (pred != signs)))
            err = min(max(err, 1e-10), 1 - 1e-10)
            alpha = 0.5 * np.log((1 - err) / err)
            if alpha <= 0:
                # Worse than chance: stop early (the resampled stream has
                # nothing left to learn).
                break
            self.estimators_.append(tree)
            self.alphas_.append(alpha)
            weights *= np.exp(-alpha * signs * pred)
            weights /= weights.sum()
        if not self.estimators_:
            # Degenerate data: keep one stump so predict() works.
            tree = DecisionTreeClassifier(max_depth=1, seed=rng)
            tree.fit(x, y)
            self.estimators_.append(tree)
            self.alphas_.append(1.0)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("AdaBoostClassifier: call fit first")
        x, _ = check_xy(x)
        total = np.zeros(len(x))
        for tree, alpha in zip(self.estimators_, self.alphas_):
            total += alpha * np.where(tree.predict(x) == self.classes_[1], 1.0, -1.0)
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(
            self.decision_function(x) > 0, self.classes_[1], self.classes_[0]
        )


class GradientBoostingClassifier:
    """Binomial-deviance gradient boosting with shallow CART trees.

    Each stage fits a tree to the sign of the current residuals and steps
    the additive score by ``learning_rate`` times the tree's (probability-
    scaled) vote.  Deliberately simple — its role is the paper's negative
    result, not state-of-the-art boosting.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.2,
        max_depth: int = 2,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.init_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x, y = check_xy(x, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier requires binary labels")
        target = (y == self.classes_[1]).astype(np.float64)
        rng = ensure_rng(self.seed)
        prior = np.clip(target.mean(), 1e-6, 1 - 1e-6)
        self.init_ = float(np.log(prior / (1 - prior)))
        scores = np.full(len(x), self.init_)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            proba = 1.0 / (1.0 + np.exp(-scores))
            residual = target - proba  # negative gradient of the deviance
            pseudo_label = (residual > 0).astype(np.int64)
            if len(np.unique(pseudo_label)) < 2:
                break
            tree = DecisionTreeClassifier(max_depth=self.max_depth, seed=rng)
            tree.fit(x, pseudo_label)
            # Step size per leaf approximated by the leaf's mean residual
            # direction through the probability output in [0, 1].
            vote = tree.predict_proba(x)[:, 1] * 2.0 - 1.0
            scores = scores + self.learning_rate * vote
            self.estimators_.append(tree)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("GradientBoostingClassifier: call fit first")
        x, _ = check_xy(x)
        scores = np.full(len(x), self.init_)
        for tree in self.estimators_:
            scores = scores + self.learning_rate * (
                tree.predict_proba(x)[:, 1] * 2.0 - 1.0
            )
        return scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(
            self.decision_function(x) > 0, self.classes_[1], self.classes_[0]
        )

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class."""
        return 1.0 / (1.0 + np.exp(-self.decision_function(x)))
