"""Shared classifier plumbing."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def check_xy(x, y=None) -> "tuple[np.ndarray, np.ndarray | None]":
    """Validate and convert inputs to float64 / int64 arrays."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {x.shape}")
    if not np.isfinite(x).all():
        raise ValueError("X contains NaN or infinity")
    if y is None:
        return x, None
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(y) != len(x):
        raise ValueError(f"X has {len(x)} rows but y has {len(y)}")
    return x, y


class BinaryClassifier(ABC):
    """Protocol all binary classifiers in :mod:`repro.ml` follow.

    ``decision_function`` returns a continuous score (higher = more likely
    positive); it is what the link prediction pipeline ranks node pairs by.
    """

    classes_: np.ndarray

    @abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "BinaryClassifier":
        ...

    @abstractmethod
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary labels derived from the decision function at threshold 0."""
        return (self.decision_function(x) > 0).astype(np.int64)

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Map arbitrary binary labels to {-1, +1}; stores ``classes_``."""
        classes = np.unique(y)
        if len(classes) != 2:
            raise ValueError(
                f"binary classifier requires exactly 2 classes, got {classes}"
            )
        self.classes_ = classes
        return np.where(y == classes[1], 1.0, -1.0)
