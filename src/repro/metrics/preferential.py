"""Preferential attachment: PA [6] (Table 3).

``score(u, v) = deg(u) * deg(v)`` — the "rich get richer" heuristic.  The
paper finds it near-useless on friendship networks (link creation there
requires joint effort from both endpoints) and marginally better on the
subscription-style YouTube network.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import SimilarityMetric, degrees, pairs_to_indices, register


@register
class PreferentialAttachment(SimilarityMetric):
    """PA [6]: degree product."""

    name = "PA"
    candidate_strategy = "all"

    def fit(self, snapshot: Snapshot) -> "PreferentialAttachment":
        self.snapshot = snapshot
        self._deg = degrees(snapshot)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._deg[rows] * self._deg[cols]

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        deg_u, deg_v = block.degrees()
        return deg_u * deg_v

    def top_pairs_fast(self, limit: int) -> np.ndarray:
        """Candidate shortlist: non-edges among the highest-degree nodes.

        This mirrors the paper's "top-K node pairs" optimisation: the top
        PA scores can only involve top-degree nodes, so scoring the full
        candidate set is unnecessary.  Returns up to ``limit`` pairs sorted
        by descending degree product.
        """
        snapshot = self._require_fit()
        nodes = np.asarray(snapshot.node_list)
        order = np.argsort(-self._deg, kind="stable")
        m = max(4, int(np.ceil(np.sqrt(4 * limit))))
        while True:
            m = min(m, len(nodes))
            chosen = order[:m]
            pairs = []
            for i in range(len(chosen)):
                for j in range(i + 1, len(chosen)):
                    u, v = int(nodes[chosen[i]]), int(nodes[chosen[j]])
                    if not snapshot.has_edge(u, v):
                        pairs.append((u, v) if u < v else (v, u))
            if pairs:
                arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
                scores = self.score(arr)
                top = arr[np.argsort(-scores, kind="stable")][:limit]
                top_scores = np.sort(scores)[::-1][:limit]
                # Any pair outside the shortlist scores at most
                # deg(best node) * deg(first excluded node); the shortlist
                # answer is exact once the k-th best inside beats that bound.
                if m >= len(nodes):
                    return top
                outside_bound = self._deg[order[0]] * self._deg[order[m]]
                if len(top_scores) >= limit and top_scores[-1] >= outside_bound:
                    return top
            elif m >= len(nodes):
                return np.zeros((0, 2), dtype=np.int64)
            m *= 2
