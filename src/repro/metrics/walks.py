"""Random-walk metrics: PPR and LRW (Table 3).

- **PPR** [5]: ``pi_{u,v} + pi_{v,u}`` where ``pi_{u,v}`` is the stationary
  probability that a random walk from ``u`` with restart probability
  ``alpha`` is at ``v``.  At snapshot scale the full PPR matrix
  ``alpha * (I - (1-alpha) P)^{-1}`` is obtained with one dense solve.
- **LRW** [25]: ``deg(u)/(2|E|) * pi_uv(m) + deg(v)/(2|E|) * pi_vu(m)``
  where ``pi_uv(m)`` is the m-step transition probability — a *local*
  random walk that only explores an m-hop ball.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    cached,
    degrees,
    dense_adjacency,
    pairs_to_indices,
    register,
)

#: Restart probability suggested by [5] and used in the paper.
PPR_ALPHA = 0.15


def transition_matrix(snapshot: Snapshot) -> np.ndarray:
    """Row-stochastic dense transition matrix ``P = D^{-1} A``."""
    def compute() -> np.ndarray:
        a = dense_adjacency(snapshot)
        deg = degrees(snapshot)
        inv = np.zeros_like(deg)
        np.divide(1.0, deg, out=inv, where=deg > 0)
        return a * inv[:, None]

    return cached(snapshot, "P", compute)


@register
class PersonalizedPageRank(SimilarityMetric):
    """PPR [5] with restart probability ``alpha`` (paper: 0.15)."""

    name = "PPR"
    candidate_strategy = "all"

    def __init__(self, alpha: float = PPR_ALPHA) -> None:
        super().__init__()
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def fit(self, snapshot: Snapshot) -> "PersonalizedPageRank":
        self.snapshot = snapshot
        key = f"ppr_{self.alpha}"

        def compute() -> np.ndarray:
            p = transition_matrix(snapshot)
            n = p.shape[0]
            # pi_u solves pi_u (I - (1-a) P) = a e_u for every u at once.
            system = np.eye(n) - (1.0 - self.alpha) * p
            return self.alpha * np.linalg.inv(system)

        self._pi = cached(snapshot, key, compute)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._pi[rows, cols] + self._pi[cols, rows]

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        rows, cols = block.rows, block.cols
        return self._pi[rows, cols] + self._pi[cols, rows]


@register
class LocalRandomWalk(SimilarityMetric):
    """LRW [25] with ``m`` walk steps (default 3)."""

    name = "LRW"
    candidate_strategy = "two_hop"

    def __init__(self, steps: int = 3) -> None:
        super().__init__()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.steps = steps

    def fit(self, snapshot: Snapshot) -> "LocalRandomWalk":
        self.snapshot = snapshot
        key = f"lrw_{self.steps}"

        def compute() -> np.ndarray:
            p = transition_matrix(snapshot)
            pm = p.copy()
            for _ in range(self.steps - 1):
                pm = pm @ p
            return pm

        self._pm = cached(snapshot, key, compute)
        self._deg = degrees(snapshot)
        self._two_e = 2.0 * snapshot.num_edges
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._score_at(rows, cols)

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return self._score_at(block.rows, block.cols)

    def _score_at(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        forward = self._deg[rows] / self._two_e * self._pm[rows, cols]
        backward = self._deg[cols] / self._two_e * self._pm[cols, rows]
        return forward + backward
