"""Candidate-pair enumeration.

Link prediction scores *unconnected* node pairs.  Which pairs are worth
scoring depends on the metric: the common-neighbourhood family is identically
zero beyond two hops, while PA / Rescal / Katz / PPR are defined globally.
At the library's snapshot scale (a few thousand nodes) both sets are
enumerated with dense vectorised operations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import cached, dense_adjacency
from repro.utils.rng import ensure_rng


def two_hop_pairs(snapshot: Snapshot) -> np.ndarray:
    """All unconnected pairs at distance exactly 2, as node-id pairs.

    These are the pairs "most algorithms' predictions are dominated by"
    (Section 4.2); the 2-hop edge ratio lambda_2 is measured against them.
    """
    def compute() -> np.ndarray:
        a = dense_adjacency(snapshot)
        a2 = a @ a
        mask = np.triu((a2 > 0) & (a == 0), k=1)
        rows, cols = np.nonzero(mask)
        nodes = np.asarray(snapshot.node_list, dtype=np.int64)
        return np.column_stack((nodes[rows], nodes[cols]))

    return cached(snapshot, "pairs_two_hop", compute)


def all_nonedge_pairs(snapshot: Snapshot) -> np.ndarray:
    """Every unconnected node pair (upper triangle), as node-id pairs."""
    def compute() -> np.ndarray:
        a = dense_adjacency(snapshot)
        mask = np.triu(a == 0, k=1)
        rows, cols = np.nonzero(mask)
        nodes = np.asarray(snapshot.node_list, dtype=np.int64)
        return np.column_stack((nodes[rows], nodes[cols]))

    return cached(snapshot, "pairs_all", compute)


def prewarm_candidate_caches(
    snapshot: Snapshot, strategies: "tuple[str, ...]" = ("two_hop",)
) -> None:
    """Materialise the candidate caches a run will need, ahead of time.

    The parallel experiment runner calls this once per snapshot per worker
    process so every ``(metric, step, seed)`` work cell dispatched to that
    worker finds the dense adjacency and candidate-pair arrays already
    cached, instead of each first-arriving cell paying the O(n^2) build.
    """
    dense_adjacency(snapshot)
    for strategy in set(strategies):
        candidate_pairs(snapshot, strategy)


def candidate_pairs(snapshot: Snapshot, strategy: str) -> np.ndarray:
    """Dispatch on a metric's ``candidate_strategy``."""
    if strategy == "two_hop":
        return two_hop_pairs(snapshot)
    if strategy == "all":
        return all_nonedge_pairs(snapshot)
    raise ValueError(f"unknown candidate strategy {strategy!r}")


def num_nonedge_pairs(snapshot: Snapshot) -> int:
    """``C(|V|, 2) - |E|``: the size of the random predictor's pool."""
    n = snapshot.num_nodes
    return n * (n - 1) // 2 - snapshot.num_edges


def random_nonedge_pairs(
    snapshot: Snapshot,
    k: int,
    rng: "int | np.random.Generator | None" = None,
    exclude: "set[tuple[int, int]] | None" = None,
) -> list[tuple[int, int]]:
    """Draw ``k`` distinct unconnected pairs uniformly at random.

    This is the paper's random-prediction baseline and also the filler used
    when a metric has fewer scorable candidates than the prediction budget.
    ``exclude`` removes pairs already predicted by the metric proper.
    """
    generator = ensure_rng(rng)
    nodes = snapshot.node_list
    n = len(nodes)
    available = num_nonedge_pairs(snapshot) - (len(exclude) if exclude else 0)
    if k > available:
        k = max(0, available)
    chosen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    # Rejection sampling: the non-edge pool vastly outnumbers k in every
    # realistic snapshot, so this terminates quickly.
    while len(result) < k:
        i, j = generator.integers(n, size=2)
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        pair = (u, v) if u < v else (v, u)
        if pair in chosen or snapshot.has_edge(*pair):
            continue
        if exclude and pair in exclude:
            continue
        chosen.add(pair)
        result.append(pair)
    return result
