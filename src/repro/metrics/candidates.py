"""Candidate-pair enumeration.

Link prediction scores *unconnected* node pairs.  Which pairs are worth
scoring depends on the metric: the common-neighbourhood family is identically
zero beyond two hops, while PA / Rescal / Katz / PPR are defined globally.

Enumeration is sparse and vectorised: the 2-hop set comes from the sparse
``A^2`` structure (memory O(nnz(A^2)), never a dense n x n mask), and the
all-pairs set is generated directly from triangular-index arithmetic with a
byte-per-pair knockout mask — no dense float adjacency is ever materialised
on this path.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.graph.snapshots import Snapshot
from repro.metrics.base import adjacency, cached, two_hop_matrix
from repro.telemetry.metrics import SIZE_BUCKETS
from repro.utils.rng import ensure_rng


def _empty_pairs() -> np.ndarray:
    return np.zeros((0, 2), dtype=np.int64)


def seed_candidate_cache(snapshot: Snapshot, pairs: np.ndarray) -> None:
    """Install a precomputed 2-hop candidate array into the snapshot cache.

    The delta engine maintains the candidate set incrementally and seeds
    materialised snapshots through this hook, so :func:`two_hop_pairs`
    serves the maintained array instead of building ``A^2``.  Callers
    guarantee the pairs match what :func:`two_hop_pairs` would compute —
    row-major over the snapshot's node positions — which the differential
    suite and :func:`repro.graph.audit.audit_delta` both enforce.
    """
    snapshot.cache["pairs_two_hop"] = pairs


def two_hop_pairs(snapshot: Snapshot) -> np.ndarray:
    """All unconnected pairs at distance exactly 2, as node-id pairs.

    These are the pairs "most algorithms' predictions are dominated by"
    (Section 4.2); the 2-hop edge ratio lambda_2 is measured against them.

    Computed from the sparse ``A^2`` upper triangle with existing edges
    knocked out by a vectorised CSR sample — memory O(nnz(A^2)) instead of
    the dense O(n^2) masks this path used to allocate.  Pairs come back in
    row-major (node_list) order.
    """
    def compute() -> np.ndarray:
        a = adjacency(snapshot)
        a2 = two_hop_matrix(snapshot)
        upper = sp.triu(a2, k=1).tocoo()
        if upper.nnz == 0:
            return _empty_pairs()
        connected = np.asarray(a[upper.row, upper.col]).ravel() > 0
        reachable = upper.data > 0  # guard explicit zeros
        keep = reachable & ~connected
        rows, cols = upper.row[keep], upper.col[keep]
        order = np.lexsort((cols, rows))
        ids = snapshot.node_ids
        return np.column_stack((ids[rows[order]], ids[cols[order]]))

    return cached(snapshot, "pairs_two_hop", compute)


def all_nonedge_pairs(snapshot: Snapshot) -> np.ndarray:
    """Every unconnected node pair (upper triangle), as node-id pairs."""
    def compute() -> np.ndarray:
        ids = snapshot.node_ids
        n = len(ids)
        if n < 2:
            return _empty_pairs()
        # Row i owns the triangular index range [offsets[i], offsets[i+1]):
        # its pairs (i, j) for j in (i, n).
        counts = (n - 1) - np.arange(n, dtype=np.int64)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        )
        keep = np.ones(int(offsets[-1]), dtype=bool)
        iu, iv = snapshot.edge_indices()
        keep[offsets[iu] + (iv - iu - 1)] = False
        linear = np.flatnonzero(keep)
        if len(linear) == 0:
            return _empty_pairs()
        rows = np.searchsorted(offsets, linear, side="right") - 1
        cols = linear - offsets[rows] + rows + 1
        return np.column_stack((ids[rows], ids[cols]))

    return cached(snapshot, "pairs_all", compute)


def prewarm_candidate_caches(
    snapshot: Snapshot, strategies: "tuple[str, ...]" = ("two_hop",)
) -> None:
    """Materialise the candidate caches a run will need, ahead of time.

    The parallel experiment runner calls this once per snapshot per worker
    process so every ``(metric, step, seed)`` work cell dispatched to that
    worker finds the sparse adjacency, ``A^2``, and candidate-pair arrays
    already cached, instead of each first-arriving cell paying the build.
    """
    adjacency(snapshot)
    two_hop_matrix(snapshot)
    for strategy in set(strategies):
        candidate_pairs(snapshot, strategy)


def candidate_pairs(snapshot: Snapshot, strategy: str) -> np.ndarray:
    """Dispatch on a metric's ``candidate_strategy``."""
    if strategy == "two_hop":
        pairs = two_hop_pairs(snapshot)
    elif strategy == "all":
        pairs = all_nonedge_pairs(snapshot)
    else:
        raise ValueError(f"unknown candidate strategy {strategy!r}")
    if telemetry.metrics.enabled:
        # Candidate-set size distributions are the §4.2 quantity the paper
        # uses to explain accuracy; record them per enumeration strategy.
        telemetry.metrics.histogram(
            "candidates.pairs", bounds=SIZE_BUCKETS, strategy=strategy
        ).observe(len(pairs))
    return pairs


def num_nonedge_pairs(snapshot: Snapshot) -> int:
    """``C(|V|, 2) - |E|``: the size of the random predictor's pool."""
    n = snapshot.num_nodes
    return n * (n - 1) // 2 - snapshot.num_edges


def random_nonedge_pairs(
    snapshot: Snapshot,
    k: int,
    rng: "int | np.random.Generator | None" = None,
    exclude: "set[tuple[int, int]] | None" = None,
) -> list[tuple[int, int]]:
    """Draw ``k`` distinct unconnected pairs uniformly at random.

    This is the paper's random-prediction baseline and also the filler used
    when a metric has fewer scorable candidates than the prediction budget.
    ``exclude`` removes pairs already predicted by the metric proper.

    Rejection sampling with *batched* RNG draws: each round draws a block
    of index pairs and eliminates self-pairs and existing edges with
    vectorised array operations, leaving only dedup/exclusion to a thin
    Python loop over the survivors.
    """
    generator = ensure_rng(rng)
    ids = snapshot.node_ids
    n = len(ids)
    excluded: set[tuple[int, int]] = set()
    if exclude:
        excluded = {(u, v) if u < v else (v, u) for u, v in exclude if u != v}
        # Only pairs actually in the non-edge pool shrink it; excluded
        # existing edges or foreign nodes must not drive it negative.
        blocked = sum(
            1
            for u, v in excluded
            if snapshot.has_node(u)
            and snapshot.has_node(v)
            and not snapshot.has_edge(u, v)
        )
    else:
        blocked = 0
    available = max(0, num_nonedge_pairs(snapshot) - blocked)
    k = min(k, available)
    if k <= 0 or n < 2:
        return []
    matrix = snapshot.adjacency_matrix()
    chosen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    # The non-edge pool vastly outnumbers k in every realistic snapshot,
    # so a couple of rounds suffice.
    while len(result) < k:
        block = max(32, 2 * (k - len(result)))
        draw = generator.integers(n, size=(block, 2))
        i, j = draw[:, 0], draw[:, 1]
        distinct = i != j
        lo = np.minimum(i[distinct], j[distinct])
        hi = np.maximum(i[distinct], j[distinct])
        if len(lo) == 0:
            continue
        nonedge = np.asarray(matrix[lo, hi]).ravel() == 0
        us = ids[lo[nonedge]].tolist()
        vs = ids[hi[nonedge]].tolist()
        for u, v in zip(us, vs):
            pair = (u, v)
            if pair in chosen or pair in excluded:
                continue
            chosen.add(pair)
            result.append(pair)
            if len(result) == k:
                break
    return result
