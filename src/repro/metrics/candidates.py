"""Candidate-pair enumeration, with density-adaptive strategy selection.

Link prediction scores *unconnected* node pairs.  Which pairs are worth
scoring depends on the metric: the common-neighbourhood family is identically
zero beyond two hops, while PA / Rescal / Katz / PPR are defined globally.

The 2-hop enumeration picks one of three interchangeable strategies from
the snapshot's CSR statistics (:meth:`~repro.graph.snapshots.Snapshot.csr_stats`):

- **sparse** — upper triangle of sparse ``A^2`` with a CSR-sampled edge
  knockout; memory O(nnz(A^2)).  The default for sparse graphs, where it
  beats any dense formulation by a wide margin.
- **dense** — one float32 GEMM over a dense 0/1 adjacency plus boolean
  masks.  On small dense graphs (facebook-like: thousands of nodes, ≥ 1%
  density) BLAS wins decisively over sparse products whose ``A^2`` is
  nearly full anyway.  Counts stay exact: they are integers below 2^24.
- **blocked** — degree-balanced row blocks of the sparse product, bounding
  the partial-product working set when ``A^2`` is too big to hold at once
  but the graph is too large/sparse for the dense path.

All three produce the *identical* row-major candidate array (the
differential suite asserts array equality), so the choice is purely a
performance decision; ``REPRO_ENUM_STRATEGY`` forces one for benchmarks.
The all-pairs set is generated from triangular-index arithmetic with a
byte-per-pair knockout mask — no dense float adjacency on that path.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.graph.snapshots import Snapshot
from repro.metrics.base import adjacency, cached, two_hop_matrix
from repro.telemetry.metrics import SIZE_BUCKETS
from repro.utils.pairs import encode_position_pairs
from repro.utils.rng import ensure_rng

#: strategy-selection thresholds (see DESIGN.md "Batched kernels &
#: density-adaptive enumeration" for the measured crossover they encode).
DENSE_MAX_NODES = 4096
DENSE_MIN_DENSITY = 0.01
BLOCKED_MIN_WORK = 50_000_000
#: multiply-adds per blocked partial product (bounds its working set).
BLOCKED_TARGET_WORK = 1 << 25

#: snapshot-cache key recording which strategy enumerated ``pairs_two_hop``.
ENUM_STRATEGY_KEY = "enum_strategy"

ENUM_STRATEGIES = ("sparse", "dense", "blocked")


def _empty_pairs() -> np.ndarray:
    return np.zeros((0, 2), dtype=np.int64)


def seed_candidate_cache(snapshot: Snapshot, pairs: np.ndarray) -> None:
    """Install a precomputed 2-hop candidate array into the snapshot cache.

    The delta engine maintains the candidate set incrementally and seeds
    materialised snapshots through this hook, so :func:`two_hop_pairs`
    serves the maintained array instead of building ``A^2``.

    The incoming array is validated and canonicalised rather than trusted:
    it must be an integer ``(n, 2)`` array of known node ids with no
    self-pairs; rows are flipped to ``u < v`` order and sorted row-major
    over snapshot positions when they are not already (the order every
    consumer — ranking RNG tie-breaks, delta score tables, the kernel
    block splitter — relies on).  Duplicate pairs raise.  A
    well-formed array (the delta engine's own) passes through unchanged,
    same object identity included, so warm-table fast paths keep working.
    """
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(
            f"candidate pairs must be an (n, 2) array, got shape {pairs.shape}"
        )
    if not np.issubdtype(pairs.dtype, np.integer):
        raise ValueError(
            f"candidate pairs must be an integer array, got dtype {pairs.dtype}"
        )
    pairs = pairs.astype(np.int64, copy=False)
    if len(pairs):
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        if np.any(lo == hi):
            bad = int(lo[np.flatnonzero(lo == hi)[0]])
            raise ValueError(f"self-pair ({bad}, {bad}) in seeded candidates")
        try:
            rows = snapshot.positions_of(lo)
            cols = snapshot.positions_of(hi)
        except KeyError as exc:
            raise ValueError(
                f"seeded candidate references unknown node {exc.args[0]}"
            ) from exc
        keys = encode_position_pairs(rows, cols)
        deltas = np.diff(keys)
        if np.any(deltas == 0):
            raise ValueError("duplicate pair in seeded candidates")
        if np.any(deltas < 0):
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            if np.any(np.diff(keys) == 0):
                raise ValueError("duplicate pair in seeded candidates")
            pairs = np.column_stack((lo[order], hi[order]))
        elif not (
            np.array_equal(lo, pairs[:, 0]) and np.array_equal(hi, pairs[:, 1])
        ):
            pairs = np.column_stack((lo, hi))
    snapshot.cache["pairs_two_hop"] = pairs
    snapshot.cache[ENUM_STRATEGY_KEY] = "seeded"


# ---------------------------------------------------------------------------
# 2-hop enumeration strategies (identical output, different cost shapes)
# ---------------------------------------------------------------------------
def choose_enumeration_strategy(snapshot: Snapshot) -> str:
    """Pick the 2-hop enumeration strategy from CSR statistics.

    ``REPRO_ENUM_STRATEGY`` (``sparse`` / ``dense`` / ``blocked``)
    overrides the choice — benchmarks use it to measure the crossover.
    """
    override = os.environ.get("REPRO_ENUM_STRATEGY", "")
    if override:
        if override not in ENUM_STRATEGIES:
            raise ValueError(
                f"REPRO_ENUM_STRATEGY must be one of {ENUM_STRATEGIES}, "
                f"got {override!r}"
            )
        return override
    stats = snapshot.csr_stats()
    if 2 <= stats.nodes <= DENSE_MAX_NODES and stats.density >= DENSE_MIN_DENSITY:
        return "dense"
    if stats.two_hop_work >= BLOCKED_MIN_WORK:
        return "blocked"
    return "sparse"


def _sparse_two_hop_positions(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    """Upper triangle of sparse ``A^2``, existing edges knocked out."""
    a = adjacency(snapshot)
    a2 = two_hop_matrix(snapshot)
    upper = sp.triu(a2, k=1).tocoo()
    if upper.nnz == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    connected = np.asarray(a[upper.row, upper.col]).ravel() > 0
    reachable = upper.data > 0  # guard explicit zeros
    keep = reachable & ~connected
    rows, cols = upper.row[keep], upper.col[keep]
    order = np.lexsort((cols, rows))
    return rows[order].astype(np.int64), cols[order].astype(np.int64)


def _dense_two_hop_positions(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    """One float32 GEMM; counts are exact integers below 2^24."""
    indptr, indices = snapshot.csr_structure()
    n = snapshot.num_nodes
    adj = np.zeros((n, n), dtype=np.float32)
    row_ids = np.repeat(np.arange(n), np.diff(indptr))
    adj[row_ids, indices] = 1.0
    counts = adj @ adj
    cand = (counts > 0) & (adj == 0.0)
    cand &= ~np.tri(n, dtype=bool)  # strict upper triangle
    rows, cols = np.nonzero(cand)  # C-order scan = row-major pair order
    return rows.astype(np.int64), cols.astype(np.int64)


def _blocked_two_hop_positions(snapshot: Snapshot) -> tuple[np.ndarray, np.ndarray]:
    """Degree-balanced row blocks of the sparse product.

    Row ``i`` of ``A @ A`` costs ``sum_{k in N(i)} deg(k)`` multiply-adds;
    block boundaries equalise that work (not row counts), so hub-heavy
    front rows do not serialise into one giant partial product.  Each
    block's partial result is filtered and sorted independently; blocks
    concatenate in row order, preserving the global row-major contract.
    """
    a = adjacency(snapshot)
    indptr, indices = snapshot.csr_structure()
    n = snapshot.num_nodes
    deg = np.diff(indptr)
    work_prefix = np.concatenate(
        (np.zeros(1), np.cumsum(deg[indices], dtype=np.float64))
    )
    row_work_cum = work_prefix[indptr]  # cumulative work before each row
    total = float(row_work_cum[-1])
    num_blocks = max(1, int(np.ceil(total / BLOCKED_TARGET_WORK)))
    targets = np.arange(1, num_blocks) * (total / num_blocks)
    cuts = np.searchsorted(row_work_cum[1:], targets, side="left") + 1
    bounds = np.unique(np.concatenate(([0], cuts, [n])))
    rows_parts, cols_parts = [], []
    for r0, r1 in zip(bounds[:-1], bounds[1:]):
        prod = (a[r0:r1] @ a).tocoo()
        if prod.nnz == 0:
            continue
        rows = prod.row.astype(np.int64) + int(r0)
        cols = prod.col.astype(np.int64)
        keep = (prod.data > 0) & (cols > rows)
        rows, cols = rows[keep], cols[keep]
        if len(rows) == 0:
            continue
        connected = np.asarray(a[rows, cols]).ravel() > 0
        rows, cols = rows[~connected], cols[~connected]
        if len(rows) == 0:
            continue
        order = np.lexsort((cols, rows))
        rows_parts.append(rows[order])
        cols_parts.append(cols[order])
    if not rows_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(rows_parts), np.concatenate(cols_parts)


_ENUM_IMPLS = {
    "sparse": _sparse_two_hop_positions,
    "dense": _dense_two_hop_positions,
    "blocked": _blocked_two_hop_positions,
}


def two_hop_pairs(snapshot: Snapshot) -> np.ndarray:
    """All unconnected pairs at distance exactly 2, as node-id pairs.

    These are the pairs "most algorithms' predictions are dominated by"
    (Section 4.2); the 2-hop edge ratio lambda_2 is measured against them.

    The enumeration strategy is chosen per snapshot by
    :func:`choose_enumeration_strategy`; all strategies return the same
    row-major (node_list-ordered) array.  The chosen strategy is recorded
    in the snapshot cache under :data:`ENUM_STRATEGY_KEY` and counted in
    telemetry.
    """
    def compute() -> np.ndarray:
        strategy = choose_enumeration_strategy(snapshot)
        snapshot.cache[ENUM_STRATEGY_KEY] = strategy
        if telemetry.metrics.enabled:
            telemetry.metrics.counter(
                "candidates.enum_strategy", strategy=strategy
            ).inc()
        rows, cols = _ENUM_IMPLS[strategy](snapshot)
        if len(rows) == 0:
            return _empty_pairs()
        ids = snapshot.node_ids
        return np.column_stack((ids[rows], ids[cols]))

    return cached(snapshot, "pairs_two_hop", compute)


def all_nonedge_pairs(snapshot: Snapshot) -> np.ndarray:
    """Every unconnected node pair (upper triangle), as node-id pairs."""
    def compute() -> np.ndarray:
        ids = snapshot.node_ids
        n = len(ids)
        if n < 2:
            return _empty_pairs()
        # Row i owns the triangular index range [offsets[i], offsets[i+1]):
        # its pairs (i, j) for j in (i, n).
        counts = (n - 1) - np.arange(n, dtype=np.int64)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        )
        keep = np.ones(int(offsets[-1]), dtype=bool)
        iu, iv = snapshot.edge_indices()
        keep[offsets[iu] + (iv - iu - 1)] = False
        linear = np.flatnonzero(keep)
        if len(linear) == 0:
            return _empty_pairs()
        rows = np.searchsorted(offsets, linear, side="right") - 1
        cols = linear - offsets[rows] + rows + 1
        return np.column_stack((ids[rows], ids[cols]))

    return cached(snapshot, "pairs_all", compute)


def prewarm_candidate_caches(
    snapshot: Snapshot, strategies: "tuple[str, ...]" = ("two_hop",)
) -> None:
    """Materialise the candidate caches a run will need, ahead of time.

    The parallel experiment runner calls this once per snapshot per worker
    process so every ``(metric, step, seed)`` work cell dispatched to that
    worker finds the sparse adjacency, packed adjacency keys, and
    candidate-pair arrays already cached, instead of each first-arriving
    cell paying the build.  (``A^2`` is *not* prewarmed any more — the
    kernel layer's expansion serves the neighbourhood metrics without it,
    and metrics that do need it build it lazily on first legacy score.)
    """
    from repro.metrics.kernels import adjacency_keys

    adjacency(snapshot)
    adjacency_keys(snapshot)
    for strategy in set(strategies):
        candidate_pairs(snapshot, strategy)


def candidate_pairs(snapshot: Snapshot, strategy: str) -> np.ndarray:
    """Dispatch on a metric's ``candidate_strategy``."""
    if strategy == "two_hop":
        pairs = two_hop_pairs(snapshot)
    elif strategy == "all":
        pairs = all_nonedge_pairs(snapshot)
    else:
        raise ValueError(f"unknown candidate strategy {strategy!r}")
    if telemetry.metrics.enabled:
        # Candidate-set size distributions are the §4.2 quantity the paper
        # uses to explain accuracy; record them per enumeration strategy.
        telemetry.metrics.histogram(
            "candidates.pairs", bounds=SIZE_BUCKETS, strategy=strategy
        ).observe(len(pairs))
    return pairs


def num_nonedge_pairs(snapshot: Snapshot) -> int:
    """``C(|V|, 2) - |E|``: the size of the random predictor's pool."""
    n = snapshot.num_nodes
    return n * (n - 1) // 2 - snapshot.num_edges


def random_nonedge_pairs(
    snapshot: Snapshot,
    k: int,
    rng: "int | np.random.Generator | None" = None,
    exclude: "set[tuple[int, int]] | None" = None,
) -> list[tuple[int, int]]:
    """Draw ``k`` distinct unconnected pairs uniformly at random.

    This is the paper's random-prediction baseline and also the filler used
    when a metric has fewer scorable candidates than the prediction budget.
    ``exclude`` removes pairs already predicted by the metric proper.

    Rejection sampling with *batched* RNG draws: each round draws a block
    of index pairs and eliminates self-pairs and existing edges with
    vectorised array operations, leaving only dedup/exclusion to a thin
    Python loop over the survivors.
    """
    generator = ensure_rng(rng)
    ids = snapshot.node_ids
    n = len(ids)
    excluded: set[tuple[int, int]] = set()
    if exclude:
        excluded = {(u, v) if u < v else (v, u) for u, v in exclude if u != v}
        # Only pairs actually in the non-edge pool shrink it; excluded
        # existing edges or foreign nodes must not drive it negative.
        blocked = sum(
            1
            for u, v in excluded
            if snapshot.has_node(u)
            and snapshot.has_node(v)
            and not snapshot.has_edge(u, v)
        )
    else:
        blocked = 0
    available = max(0, num_nonedge_pairs(snapshot) - blocked)
    k = min(k, available)
    if k <= 0 or n < 2:
        return []
    matrix = snapshot.adjacency_matrix()
    chosen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    # The non-edge pool vastly outnumbers k in every realistic snapshot,
    # so a couple of rounds suffice.
    while len(result) < k:
        block = max(32, 2 * (k - len(result)))
        draw = generator.integers(n, size=(block, 2))
        i, j = draw[:, 0], draw[:, 1]
        distinct = i != j
        lo = np.minimum(i[distinct], j[distinct])
        hi = np.maximum(i[distinct], j[distinct])
        if len(lo) == 0:
            continue
        nonedge = np.asarray(matrix[lo, hi]).ravel() == 0
        us = ids[lo[nonedge]].tolist()
        vs = ids[hi[nonedge]].tolist()
        for u, v in zip(us, vs):
            pair = (u, v)
            if pair in chosen or pair in excluded:
                continue
            chosen.add(pair)
            result.append(pair)
            if len(result) == k:
                break
    return result
