"""Path-based metrics: SP, LP and the two Katz approximations (Table 3).

- **SP** scores a pair by (negated) shortest-path hop count.  As the paper
  notes, its top score goes to *every* 2-hop pair, so its prediction is
  effectively a random draw among them — it is included as the cautionary
  baseline of Section 4.2.
- **LP** [45] counts ``|paths^2| + eps * |paths^3|``; the tiny ``eps``
  (paper value 1e-4) means 3-hop paths only break ties between equal 2-hop
  counts.
- **Katz** [18] sums all paths with exponentially decaying weight
  ``beta^len``.  The closed form ``(I - beta*A)^{-1} - I`` does not scale,
  so the paper evaluates two approximations: ``Katz_lr`` (low-rank, via the
  top-r spectrum of A [1]) and ``Katz_sc`` (scalable proximity estimation
  [38], here a truncated series over paths of length <= l_max).  Matching
  the paper, Katz_lr is the more accurate and the more expensive of the two.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import shortest_path

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    adjacency,
    cached,
    dense_adjacency,
    matrix_values,
    pairs_to_indices,
    register,
    two_hop_matrix,
)

#: Paper-tuned parameters (Section 3.2).
LP_EPSILON = 1e-4
KATZ_BETA = 1e-3


@register
class ShortestPath(SimilarityMetric):
    """SP: negated hop count (fewer hops = higher score)."""

    name = "SP"
    candidate_strategy = "all"

    def fit(self, snapshot: Snapshot) -> "ShortestPath":
        self.snapshot = snapshot
        self._dist = cached(
            snapshot,
            "sp_dist",
            lambda: shortest_path(adjacency(snapshot), method="D", unweighted=True),
        )
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._score_at(rows, cols)

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return self._score_at(block.rows, block.cols)

    def _score_at(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        dist = self._dist[rows, cols]
        # Unreachable pairs (inf) get -inf so they rank last.
        return np.where(np.isinf(dist), -np.inf, -dist)


@register
class LocalPath(SimilarityMetric):
    """LP [45]: ``|paths^2| + eps * |paths^3|``."""

    name = "LP"
    candidate_strategy = "two_hop"

    def __init__(self, epsilon: float = LP_EPSILON) -> None:
        super().__init__()
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon

    def fit(self, snapshot: Snapshot) -> "LocalPath":
        self.snapshot = snapshot
        self._a2 = two_hop_matrix(snapshot)
        # A^3 = A @ A^2 computed dense: nnz(A^3) approaches n^2 in these
        # small-world snapshots, so dense is both smaller and faster here.
        self._a3 = cached(
            snapshot,
            "A3_dense",
            lambda: adjacency(snapshot) @ self._a2.toarray(),
        )
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        p2 = matrix_values(self._a2, rows, cols)
        p3 = self._a3[rows, cols]
        return p2 + self.epsilon * p3

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        # 2-hop counts come from the shared expansion (exact integers, so
        # order-independent); only the 3-hop term still reads the dense A^3.
        p2 = block.counts()
        p3 = self._a3[block.rows, block.cols]
        return p2 + self.epsilon * p3


@register
class KatzLowRank(SimilarityMetric):
    """Katz_lr [1]: low-rank spectral approximation of the Katz index.

    With ``A = U diag(lam) U^T`` (top-r eigenpairs), the Katz series
    ``sum_l beta^l A^l`` becomes ``U diag(beta*lam / (1 - beta*lam)) U^T``.
    """

    name = "Katz_lr"
    candidate_strategy = "all"

    def __init__(self, beta: float = KATZ_BETA, rank: int = 50) -> None:
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.beta = beta
        self.rank = rank

    def fit(self, snapshot: Snapshot) -> "KatzLowRank":
        self.snapshot = snapshot
        n = snapshot.num_nodes
        r = min(self.rank, max(1, n - 2))
        key = f"katz_lr_{self.beta}_{r}"

        def compute() -> tuple[np.ndarray, np.ndarray]:
            a = adjacency(snapshot)
            if n <= r + 2:
                lam, vec = np.linalg.eigh(a.toarray())
            else:
                lam, vec = spla.eigsh(a, k=r, which="LM")
            factor = self.beta * lam / (1.0 - self.beta * lam)
            return vec, factor

        self._vec, self._factor = cached(snapshot, key, compute)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._score_at(rows, cols)

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return self._score_at(block.rows, block.cols)

    def _score_at(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        left = self._vec[rows] * self._factor
        return np.einsum("ij,ij->i", left, self._vec[cols])


@register
class KatzTruncated(SimilarityMetric):
    """Katz_sc [38]: truncated-series proximity estimation.

    Sums ``beta^l * |paths^l|`` for ``l <= l_max`` using dense matrix
    powers; this is the "scalable" Katz variant of the paper (cheap, less
    accurate than the low-rank spectral form, as the paper observes).
    """

    name = "Katz_sc"
    candidate_strategy = "all"

    def __init__(self, beta: float = KATZ_BETA, max_length: int = 4) -> None:
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if max_length < 2:
            raise ValueError(f"max_length must be >= 2, got {max_length}")
        self.beta = beta
        self.max_length = max_length

    def fit(self, snapshot: Snapshot) -> "KatzTruncated":
        self.snapshot = snapshot
        key = f"katz_sc_{self.beta}_{self.max_length}"

        def compute() -> np.ndarray:
            a_sparse = adjacency(snapshot)
            power = dense_adjacency(snapshot).copy()
            total = self.beta * power
            weight = self.beta
            for _ in range(self.max_length - 1):
                power = a_sparse @ power
                weight *= self.beta
                total += weight * power
            return total

        self._matrix = cached(snapshot, key, compute)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._matrix[rows, cols]

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return self._matrix[block.rows, block.cols]
