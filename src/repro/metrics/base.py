"""Similarity-metric interface and registry.

Every metric-based prediction algorithm of Table 3 implements the same tiny
protocol:

- ``fit(snapshot)`` precomputes whatever per-snapshot state the metric needs
  (sparse matrix powers, embeddings, walk matrices, ...);
- ``score(pairs)`` returns one similarity score per candidate node pair
  (an ``(n, 2)`` array of node ids), where a higher score means the pair is
  more likely to connect next.

``candidate_strategy`` declares the candidate set over which the metric's
top-k prediction is meaningful: the neighbourhood metrics are exactly zero
beyond two hops, so enumerating all pairs for them would only add random
tie-breaking noise (this matches how the paper's C++ implementations scope
their computation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro import telemetry
from repro.graph.snapshots import Snapshot


#: process-wide cache instrumentation (see :func:`cache_stats`).  Counters
#: rather than per-snapshot state so the experiment runner can report hit
#: rates across a whole run — including runs whose snapshots live in worker
#: processes — with a single pair of integers.
_CACHE_COUNTS = {"hits": 0, "misses": 0}


def cache_stats() -> dict[str, int]:
    """Snapshot of the process-wide memoisation counters.

    Returns ``{"hits": ..., "misses": ...}`` accumulated by :func:`cached`
    since interpreter start (or the last :func:`reset_cache_stats`).
    """
    return dict(_CACHE_COUNTS)


def reset_cache_stats() -> None:
    """Zero the process-wide cache counters (used by tests and workers)."""
    _CACHE_COUNTS["hits"] = 0
    _CACHE_COUNTS["misses"] = 0


def cached(snapshot: Snapshot, key: str, compute: Callable[[], object]):
    """Memoise an expensive per-snapshot precomputation on the snapshot.

    Several metrics share the same building blocks (dense adjacency, A^2,
    degree vectors); caching them on the snapshot means a full 14-metric
    evaluation pays for each block once.
    """
    if key not in snapshot.cache:
        _CACHE_COUNTS["misses"] += 1
        if telemetry.tracer.enabled:
            with telemetry.tracer.span(
                "metrics.cache_compute", key=key, snapshot=snapshot.index
            ):
                snapshot.cache[key] = compute()
            telemetry.metrics.counter("metrics.cache_misses", key=key).inc()
        else:
            snapshot.cache[key] = compute()
    else:
        _CACHE_COUNTS["hits"] += 1
        if telemetry.metrics.enabled:
            telemetry.metrics.counter("metrics.cache_hits", key=key).inc()
    return snapshot.cache[key]


def adjacency(snapshot: Snapshot) -> sp.csr_matrix:
    """Cached sparse adjacency matrix of the snapshot."""
    return cached(snapshot, "A", snapshot.adjacency_matrix)


def dense_adjacency(snapshot: Snapshot) -> np.ndarray:
    """Cached dense float64 adjacency (snapshots are capped at a few
    thousand nodes, where dense linear algebra is the fastest option)."""
    return cached(snapshot, "A_dense", lambda: adjacency(snapshot).toarray())


def two_hop_matrix(snapshot: Snapshot) -> sp.csr_matrix:
    """Cached sparse ``A^2`` (entry ``uv`` = number of common neighbours)."""
    def compute() -> sp.csr_matrix:
        a = adjacency(snapshot)
        return (a @ a).tocsr()

    return cached(snapshot, "A2", compute)


def degrees(snapshot: Snapshot) -> np.ndarray:
    """Cached degree vector aligned with ``snapshot.node_list``."""
    return cached(snapshot, "deg", snapshot.degree_array)


def pairs_to_indices(snapshot: Snapshot, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map an ``(n, 2)`` array of node ids to matrix row/col indices.

    A single vectorised gather against the snapshot's sorted node-id
    table (two ``searchsorted`` calls) instead of a Python dict lookup
    per pair; unknown ids raise ``KeyError`` exactly as a dict would.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    rows = snapshot.positions_of(pairs[:, 0])
    cols = snapshot.positions_of(pairs[:, 1])
    return rows, cols


def matrix_values(matrix: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Extract ``matrix[rows[i], cols[i]]`` for all i, as a 1-D array."""
    if rows.size == 0:
        return np.zeros(0, dtype=np.float64)
    return np.asarray(matrix[rows, cols]).ravel().astype(np.float64)


class SimilarityMetric(ABC):
    """Base class for the 14 metric-based predictors (Table 3)."""

    #: registry key and display name, e.g. "CN", "Katz_lr".
    name: str = "?"
    #: "two_hop" (score is zero beyond 2 hops) or "all" (globally defined).
    candidate_strategy: str = "two_hop"

    def __init__(self) -> None:
        self.snapshot: Snapshot | None = None

    @abstractmethod
    def fit(self, snapshot: Snapshot) -> "SimilarityMetric":
        """Precompute per-snapshot state; returns self for chaining."""

    @abstractmethod
    def score(self, pairs: np.ndarray) -> np.ndarray:
        """Score candidate pairs; ``pairs`` is an ``(n, 2)`` node-id array."""

    def score_block(self, block) -> np.ndarray:
        """Score one :class:`~repro.metrics.kernels.CandidateBlock`.

        The batched-kernel protocol: ``block`` carries shared, memoised
        state (position columns, the common-neighbour expansion, degree
        gathers) that every metric scoring the same block reuses.  Scores
        must be *bitwise identical* to ``score(block.pairs)`` — the
        differential suite enforces this for every registered metric.
        The default delegates to :meth:`score`, so third-party metrics
        keep working unchanged; built-in metrics override it to read the
        block's shared state instead of rebuilding their own.
        """
        return self.score(block.pairs)

    def _require_fit(self) -> Snapshot:
        if self.snapshot is None:
            raise RuntimeError(f"{self.name}: call fit(snapshot) before score()")
        return self.snapshot

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: registry: metric name -> zero-argument factory.
_REGISTRY: dict[str, Callable[[], SimilarityMetric]] = {}


def register(cls):
    """Class decorator adding a metric to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate metric name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_metric(name: str, **kwargs) -> SimilarityMetric:
    """Instantiate a registered metric by name (e.g. ``get_metric("AA")``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def all_metric_names() -> list[str]:
    """Names of every registered metric, sorted."""
    return sorted(_REGISTRY)
