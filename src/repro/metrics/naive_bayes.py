"""Local naive Bayes metrics: BCN, BAA, BRA [26] (Table 3).

The local naive Bayes model refines the common-neighbour family by weighting
each common neighbour ``w`` with its *role function*

    R_w = (N_triangle(w) + 1) / (N_non_triangle(w) + 1),

where ``N_triangle(w)`` counts triangles through ``w`` and
``N_non_triangle(w) = C(deg(w), 2) - N_triangle(w)`` counts the open wedges
centred on ``w``.  Intuitively a neighbour whose friendships tend to close
into triangles is stronger evidence that the pair will connect.  With the
prior constant ``s = |V|(|V|-1) / (2|E|) - 1`` the three scores are

    BCN(u,v) = |CN| * log(s) + sum_w log(R_w)
    BAA(u,v) = sum_w (log(s) + log(R_w)) / log(deg(w))
    BRA(u,v) = sum_w (log(s) + log(R_w)) / deg(w)

each a weighted 2-hop path count, so they share the sparse
``A @ diag(w) @ A`` machinery of :mod:`repro.metrics.local`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    adjacency,
    cached,
    degrees,
    matrix_values,
    pairs_to_indices,
    register,
    two_hop_matrix,
)
from repro.metrics.local import weighted_two_hop


def node_triangle_counts(snapshot: Snapshot) -> np.ndarray:
    """Triangles through each node, aligned with ``node_list``.

    ``diag(A^3) / 2`` computed without forming ``A^3``:
    ``(A @ A) ∘ A`` summed per row counts closed 2-paths at each node,
    which is twice the number of triangles through it.
    """
    def compute() -> np.ndarray:
        a = adjacency(snapshot)
        closed = (a @ a).multiply(a).sum(axis=1)
        return np.asarray(closed).ravel() / 2.0

    return cached(snapshot, "triangles", compute)


def role_function(snapshot: Snapshot) -> np.ndarray:
    """``R_w`` of [26] for every node."""
    def compute() -> np.ndarray:
        deg = degrees(snapshot)
        tri = node_triangle_counts(snapshot)
        wedges = deg * (deg - 1) / 2.0
        non_tri = wedges - tri
        return (tri + 1.0) / (non_tri + 1.0)

    return cached(snapshot, "role_function", compute)


def prior_constant(snapshot: Snapshot) -> float:
    """``s = |V|(|V|-1)/(2|E|) - 1`` — the class-prior odds of a non-edge."""
    n, e = snapshot.num_nodes, snapshot.num_edges
    if e == 0:
        raise ValueError("prior constant undefined for an edgeless snapshot")
    return n * (n - 1) / (2.0 * e) - 1.0


class _LocalNaiveBayesMetric(SimilarityMetric):
    """Shared fit/score for the three LNB variants."""

    candidate_strategy = "two_hop"

    def _neighbour_weights(self, snapshot: Snapshot, log_s: float) -> np.ndarray:
        raise NotImplementedError

    def fit(self, snapshot: Snapshot):
        self.snapshot = snapshot
        log_s = math.log(prior_constant(snapshot))
        self._weights = self._neighbour_weights(snapshot, log_s)
        # The weighted product is deferred to the first score() call: the
        # kernel path (score_block) sums self._weights over the shared
        # common-neighbour expansion and never needs the matrix.
        self._matrix = None
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        if self._matrix is None:
            self._matrix = weighted_two_hop(
                snapshot, self._weights, f"{self.name}_mat"
            )
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return block.weighted(self._weights, self.name).copy()


@register
class BayesCommonNeighbors(_LocalNaiveBayesMetric):
    """BCN [26]: ``|CN| log(s) + sum_w log(R_w)``."""

    name = "BCN"

    def _neighbour_weights(self, snapshot: Snapshot, log_s: float) -> np.ndarray:
        # log(s) + log(R_w) per intermediate node folds both terms into a
        # single weighted path count.
        return log_s + np.log(role_function(snapshot))


@register
class BayesAdamicAdar(_LocalNaiveBayesMetric):
    """BAA [26]: ``sum_w (log(s) + log(R_w)) / log(deg(w))``."""

    name = "BAA"

    def _neighbour_weights(self, snapshot: Snapshot, log_s: float) -> np.ndarray:
        deg = degrees(snapshot)
        base = log_s + np.log(role_function(snapshot))
        out = np.zeros_like(base)
        mask = deg > 1
        out[mask] = base[mask] / np.log(deg[mask])
        return out


@register
class BayesResourceAllocation(_LocalNaiveBayesMetric):
    """BRA [26]: ``sum_w (log(s) + log(R_w)) / deg(w)``."""

    name = "BRA"

    def _neighbour_weights(self, snapshot: Snapshot, log_s: float) -> np.ndarray:
        deg = degrees(snapshot)
        base = log_s + np.log(role_function(snapshot))
        out = np.zeros_like(base)
        mask = deg > 0
        out[mask] = base[mask] / deg[mask]
        return out
