"""The metric-based link prediction algorithms of Table 3 (and beyond).

Importing this package registers every metric; use
:func:`~repro.metrics.base.get_metric` / ``all_metric_names()`` to
instantiate them by their paper names:

``CN  JC  AA  RA  BCN  BAA  BRA  LP  SP  PA  PPR  LRW  Katz_lr  Katz_sc
Rescal  WCN  WAA  WRA``

(Katz appears twice — the low-rank and the scalable approximation — so 15
names cover the paper's "14 metrics + two Katz implementations"; the
Section-7 weighted extensions WCN/WAA/WRA bring the registered sweep to
18.)
"""

from repro.metrics import (  # noqa: F401  (import for registration side effect)
    local,
    naive_bayes,
    paths,
    preferential,
    rescal,
    walks,
)
from repro.extensions import weighted  # noqa: F401  (registration: WCN/WAA/WRA)
from repro.metrics.base import SimilarityMetric, all_metric_names, get_metric
from repro.metrics.candidates import (
    all_nonedge_pairs,
    candidate_pairs,
    num_nonedge_pairs,
    random_nonedge_pairs,
    two_hop_pairs,
)

#: The metric set plotted in Figure 5 (CN/AA/RA omitted there because their
#: LNB versions perform near-identically; we keep them available).
FIGURE5_METRICS = (
    "JC", "BCN", "BAA", "BRA", "LP", "LRW", "PPR", "SP",
    "Katz_lr", "Katz_sc", "Rescal", "PA",
)

#: The 14 feature metrics fed to the classifiers in Section 5 (one Katz).
CLASSIFIER_FEATURES = (
    "CN", "JC", "AA", "RA", "BCN", "BAA", "BRA",
    "LP", "SP", "PA", "PPR", "LRW", "Katz_lr", "Rescal",
)

__all__ = [
    "SimilarityMetric",
    "get_metric",
    "all_metric_names",
    "candidate_pairs",
    "two_hop_pairs",
    "all_nonedge_pairs",
    "num_nonedge_pairs",
    "random_nonedge_pairs",
    "FIGURE5_METRICS",
    "CLASSIFIER_FEATURES",
]
