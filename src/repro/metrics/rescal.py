"""RESCAL [33]: collective matrix factorisation (Table 3).

RESCAL factorises the adjacency matrix as ``A ≈ X R X^T`` where ``X`` gives
every node an ``r``-dimensional latent representation and ``R`` models the
interaction between latent components.  The pair score is the symmetrised
reconstruction ``XRX^T(u,v) + XRX^T(v,u)``.

The alternating-least-squares updates follow Nickel et al. for a single
relation slice:

- ``R`` update (exact LS solution given X):
  ``R = pinv(X) A pinv(X)^T``
- ``X`` update (one relation, symmetric A):
  ``X <- (A X R^T + A^T X R) (R M R^T + R^T M R + lambda I)^{-1}``
  with ``M = X^T X``.

Section 4.2's key observation — RESCAL concentrates weight on supernodes
and therefore dominates on the disassortative YouTube graph — emerges
directly from this factorisation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.graph.snapshots import Snapshot
from repro.metrics.base import SimilarityMetric, adjacency, cached, pairs_to_indices, register


def rescal_als(
    a_sparse,
    rank: int,
    iterations: int = 25,
    regularization: float = 1e-2,
    tol: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Run RESCAL ALS on a (sparse, symmetric) adjacency matrix.

    Returns ``(X, R)``.  ``X`` is initialised from the top-``rank``
    eigenvectors of ``A`` (the standard "eigen init" which makes the
    factorisation deterministic for a given snapshot).
    """
    n = a_sparse.shape[0]
    rank = min(rank, max(1, n - 2))
    if n <= rank + 2:
        _, x = np.linalg.eigh(a_sparse.toarray())
        x = x[:, -rank:]
    else:
        _, x = spla.eigsh(a_sparse, k=rank, which="LM")
    r = _update_r(a_sparse, x)
    prev_fit = np.inf
    for _ in range(iterations):
        x = _update_x(a_sparse, x, r, regularization)
        r = _update_r(a_sparse, x)
        fit = _fit_residual(a_sparse, x, r)
        if abs(prev_fit - fit) < tol * max(1.0, abs(prev_fit)):
            break
        prev_fit = fit
    return x, r


def _update_r(a_sparse, x: np.ndarray) -> np.ndarray:
    """Exact least-squares update of R given X."""
    pinv = np.linalg.pinv(x)
    return pinv @ (a_sparse @ pinv.T)


def _update_x(a_sparse, x: np.ndarray, r: np.ndarray, reg: float) -> np.ndarray:
    """Regularised least-squares update of X given R (A symmetric)."""
    m = x.T @ x
    ax = a_sparse @ x
    numerator = ax @ r.T + ax @ r  # A X R^T + A^T X R with A = A^T
    denominator = r @ m @ r.T + r.T @ m @ r + reg * np.eye(x.shape[1])
    return np.linalg.solve(denominator.T, numerator.T).T


def _fit_residual(a_sparse, x: np.ndarray, r: np.ndarray) -> float:
    """||A - X R X^T||_F^2 without materialising the n x n reconstruction.

    Expands the norm: ||A||^2 - 2 <A, XRX^T> + ||XRX^T||^2; every term
    reduces to r x r products.
    """
    m = x.T @ x
    ax = a_sparse @ x
    a_norm = a_sparse.multiply(a_sparse).sum()
    cross = np.sum((x.T @ ax) * r)
    recon = np.sum((m @ r @ m) * r.T)
    return float(a_norm - 2.0 * cross + recon)


@register
class Rescal(SimilarityMetric):
    """RESCAL [33] with eigen-initialised ALS."""

    name = "Rescal"
    candidate_strategy = "all"

    def __init__(self, rank: int = 25, iterations: int = 25, regularization: float = 1e-2):
        super().__init__()
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.iterations = iterations
        self.regularization = regularization

    def fit(self, snapshot: Snapshot) -> "Rescal":
        self.snapshot = snapshot
        key = f"rescal_{self.rank}_{self.iterations}_{self.regularization}"

        def compute() -> tuple[np.ndarray, np.ndarray]:
            return rescal_als(
                adjacency(snapshot),
                rank=self.rank,
                iterations=self.iterations,
                regularization=self.regularization,
            )

        self._x, self._r = cached(snapshot, key, compute)
        self._xr = self._x @ self._r
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return self._score_at(rows, cols)

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        return self._score_at(block.rows, block.cols)

    def _score_at(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        forward = np.einsum("ij,ij->i", self._xr[rows], self._x[cols])
        backward = np.einsum("ij,ij->i", self._xr[cols], self._x[rows])
        return forward + backward

    def node_weights(self) -> np.ndarray:
        """Latent importance per node (row norm of X).

        Used in the Section 4.2 analysis: on subscription networks the
        supernodes carry far larger latent weight than everyone else.
        """
        self._require_fit()
        return np.linalg.norm(self._x, axis=1)
