"""Batched scoring kernels over shared CSR neighbour intersections.

Scoring the Table-3 sweep used to repeat the same work per metric: every
neighbourhood metric built its own ``A @ diag(w) @ A`` product, sampled it
with its own ``pairs_to_indices`` gather, and threw the intermediates away.
This module factors the shared parts into a :class:`CandidateBlock` — a
slice of the candidate set carrying lazily computed, memoised state that
*every* metric reuses:

- the position columns (``rows`` / ``cols``) — one ``pairs_to_indices``
  per block instead of one per metric;
- the **common-neighbour expansion** — for each pair, the positions of its
  common neighbours, as two flat arrays ``(pair_ids, neighbors)``.  CN is
  a segment count over it; AA/RA/BCN/BAA/BRA/LP are segment sums of a
  per-node weight vector over it; JC adds a degree gather.  One expansion
  replaces six sparse matrix products.

Bitwise parity with the matrix path is load-bearing (the delta engine and
the serving layer both advertise bit-identical scores) and hinges on
accumulation order: scipy's SMMP ``csr_matmat`` emits each intermediate
row's columns in *reverse* order (its linked-list accumulator pushes at
the head), so ``(A @ diag(w) @ A)[u, v]`` sums ``w`` over the common
neighbours in **descending** position order.  The expansion therefore
enumerates each adjacency segment back-to-front, and the per-pair
``np.bincount`` accumulation replays the exact same float additions the
sparse product performs — equality is bitwise, not approximate, which
``tests/test_kernel_parity.py`` enforces for every registered metric.

:func:`score_pairs` is the routing entry point used by the experiment
runner, the delta engine's rescoring, and the serving hot path: it splits
the candidate set into blocks, calls ``metric.score_block`` on each, and
emits ``kernels.block`` spans plus block-size/latency histograms.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import telemetry
from repro.graph.snapshots import Snapshot
from repro.metrics.base import cached, degrees, pairs_to_indices
from repro.telemetry.metrics import SIZE_BUCKETS
from repro.utils.pairs import encode_position_pairs

#: default pairs per candidate block; override with REPRO_KERNEL_BLOCK_PAIRS.
#: Sized so one block's expansion (pairs x avg min-degree int32 columns)
#: stays comfortably in cache-friendly territory on the benchmark presets.
DEFAULT_BLOCK_PAIRS = 262_144


def block_pair_limit() -> int:
    """Pairs per block, honouring the ``REPRO_KERNEL_BLOCK_PAIRS`` override."""
    raw = os.environ.get("REPRO_KERNEL_BLOCK_PAIRS")
    if not raw:
        return DEFAULT_BLOCK_PAIRS
    limit = int(raw)
    if limit < 1:
        raise ValueError(f"REPRO_KERNEL_BLOCK_PAIRS must be >= 1, got {limit}")
    return limit


def adjacency_keys(snapshot: Snapshot) -> np.ndarray:
    """Sorted packed ``row * SHIFT + col`` keys of every directed edge.

    The sorted-key form turns "is ``v`` adjacent to ``u``" into one
    ``searchsorted`` probe; CSR rows are already sorted, so the key array
    is sorted by construction (no extra sort pass).
    """
    def compute() -> np.ndarray:
        indptr, indices = snapshot.csr_structure()
        n = len(indptr) - 1
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        return encode_position_pairs(rows, indices)

    return cached(snapshot, "adj_keys", compute)


def dense_probe_matrix(snapshot: Snapshot) -> np.ndarray:
    """Cached dense boolean adjacency for O(1) membership probes.

    Worth its n^2-bool footprint only on small dense snapshots (the same
    regime as the dense enumeration strategy); callers gate on
    :meth:`~repro.graph.snapshots.Snapshot.csr_stats`.
    """
    def compute() -> np.ndarray:
        indptr, indices = snapshot.csr_structure()
        n = len(indptr) - 1
        dense = np.zeros((n, n), dtype=bool)
        row_ids = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        dense[row_ids, indices] = True
        return dense

    return cached(snapshot, "adj_bool_dense", compute)


def common_neighbor_expansion(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    adj_keys: "np.ndarray | None" = None,
    adj_bool: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Common-neighbour positions of each ``(rows[i], cols[i])`` pair.

    Returns ``(pair_ids, neighbors)``: for every pair ``i`` and every node
    ``w`` adjacent to both endpoints, one entry ``pair_ids == i``,
    ``neighbors == position of w``.  Within a pair, neighbours appear in
    **descending** position order — the order scipy's sparse product
    accumulates in, which is what makes downstream ``np.bincount`` sums
    bitwise-identical to matrix sampling (see the module docstring).

    The smaller-degree endpoint's adjacency list is expanded and the other
    endpoint membership-probed, so the work is
    ``sum_i min(deg(u_i), deg(v_i))`` probes regardless of which side is
    the hub.  The probe is one boolean fancy-index gather when a dense
    ``adj_bool`` matrix is supplied (small dense snapshots), else a
    ``searchsorted`` against the packed sorted edge keys.  Membership is
    exact either way — the probe selects, never computes — so the choice
    cannot affect a single output bit.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    if len(rows) == 0:
        return empty, empty
    deg = np.diff(indptr)
    expand_rows = deg[rows] <= deg[cols]
    left = np.where(expand_rows, rows, cols)
    right = np.where(expand_rows, cols, rows)
    counts = deg[left]
    total = int(counts.sum())
    if total == 0:
        return empty, empty
    starts = indptr[left]
    # Flat CSR range expansion, back-to-front within each segment: element
    # j of segment i reads position starts[i] + counts[i] - 1 - j.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    local = np.arange(total, dtype=np.int64) - offsets
    flat = np.repeat(starts + counts - 1, counts) - local
    neighbors = indices[flat]
    pair_ids = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
    if adj_bool is not None:
        hit = adj_bool[np.repeat(right, counts), neighbors]
    else:
        if adj_keys is None:
            n = len(indptr) - 1
            all_rows = np.repeat(np.arange(n, dtype=np.int64), deg)
            adj_keys = encode_position_pairs(all_rows, indices)
        probe = encode_position_pairs(np.repeat(right, counts), neighbors)
        pos = np.searchsorted(adj_keys, probe)
        safe = np.minimum(pos, max(len(adj_keys) - 1, 0))
        hit = adj_keys[safe] == probe
    return pair_ids[hit], neighbors[hit]


def intersection_counts(
    pair_ids: np.ndarray, num_pairs: int
) -> np.ndarray:
    """``|Γ(u) ∩ Γ(v)|`` per pair from an expansion (exact integers)."""
    return np.bincount(pair_ids, minlength=num_pairs).astype(np.float64)


def weighted_counts(
    pair_ids: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    num_pairs: int,
) -> np.ndarray:
    """``sum_w weights[w]`` over each pair's common neighbours.

    ``np.bincount`` accumulates sequentially in array order; with the
    expansion's descending neighbour order this replays the sparse
    product's float additions exactly (bitwise parity, not allclose).
    """
    if len(pair_ids) == 0:
        return np.zeros(num_pairs, dtype=np.float64)
    return np.bincount(
        pair_ids, weights=weights[neighbors], minlength=num_pairs
    )


class CandidateBlock:
    """One slice of a candidate set with shared, memoised scoring state.

    Metrics receive blocks through :meth:`SimilarityMetric.score_block`;
    everything a metric asks for (positions, expansion, counts, weighted
    sums) is computed once per block and reused by every later metric
    scoring the same block — the whole point of the kernel layer.
    """

    __slots__ = (
        "snapshot", "pairs", "_rows", "_cols", "_expansion", "_counts",
        "_weighted",
    )

    def __init__(self, snapshot: Snapshot, pairs: np.ndarray) -> None:
        self.snapshot = snapshot
        self.pairs = pairs
        self._rows: "np.ndarray | None" = None
        self._cols: "np.ndarray | None" = None
        self._expansion: "tuple[np.ndarray, np.ndarray] | None" = None
        self._counts: "np.ndarray | None" = None
        self._weighted: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def rows(self) -> np.ndarray:
        if self._rows is None:
            self._rows, self._cols = pairs_to_indices(self.snapshot, self.pairs)
        return self._rows

    @property
    def cols(self) -> np.ndarray:
        if self._cols is None:
            self._rows, self._cols = pairs_to_indices(self.snapshot, self.pairs)
        return self._cols

    def expansion(self) -> tuple[np.ndarray, np.ndarray]:
        """Memoised common-neighbour expansion of this block's pairs."""
        if self._expansion is None:
            from repro.metrics.candidates import (
                DENSE_MAX_NODES,
                DENSE_MIN_DENSITY,
            )

            indptr, indices = self.snapshot.csr_structure()
            stats = self.snapshot.csr_stats()
            if stats.nodes <= DENSE_MAX_NODES and stats.density >= DENSE_MIN_DENSITY:
                self._expansion = common_neighbor_expansion(
                    indptr, indices, self.rows, self.cols,
                    adj_bool=dense_probe_matrix(self.snapshot),
                )
            else:
                self._expansion = common_neighbor_expansion(
                    indptr, indices, self.rows, self.cols,
                    adj_keys=adjacency_keys(self.snapshot),
                )
        return self._expansion

    def counts(self) -> np.ndarray:
        """Common-neighbour counts (CN) for every pair; treat as read-only."""
        if self._counts is None:
            pair_ids, _ = self.expansion()
            self._counts = intersection_counts(pair_ids, len(self.pairs))
        return self._counts

    def weighted(self, weights: np.ndarray, key: str) -> np.ndarray:
        """Weighted common-neighbour sums, memoised per weight-vector key.

        ``key`` names the weight vector (metric name by convention) so
        repeat scoring of the same block — the runner sweeps metrics over
        a shared block list — hits the memo; treat results as read-only.
        """
        out = self._weighted.get(key)
        if out is None:
            pair_ids, neighbors = self.expansion()
            out = weighted_counts(pair_ids, neighbors, weights, len(self.pairs))
            self._weighted[key] = out
        return out

    def degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """``(deg[rows], deg[cols])`` gathered from the cached degree column."""
        deg = degrees(self.snapshot)
        return deg[self.rows], deg[self.cols]


def blocks_for(snapshot: Snapshot, pairs: np.ndarray) -> "list[CandidateBlock]":
    """Split a candidate array into scoring blocks, memoised per snapshot.

    When ``pairs`` *is* one of the snapshot's cached candidate arrays
    (the common case: every metric in a sweep scores the same enumeration)
    the block list is cached on the snapshot, so expansions computed while
    scoring the first metric are reused by all later ones.  A candidate
    set at or below the block limit stays a single block wrapping the
    original array object — preserving identity fast paths downstream
    (e.g. the delta engine's warm-table shortcut).
    """
    limit = block_pair_limit()

    def build() -> "list[CandidateBlock]":
        if len(pairs) <= limit:
            return [CandidateBlock(snapshot, pairs)]
        return [
            CandidateBlock(snapshot, pairs[start : start + limit])
            for start in range(0, len(pairs), limit)
        ]

    for cache_key, blocks_key in (
        ("pairs_two_hop", "kernel_blocks_two_hop"),
        ("pairs_all", "kernel_blocks_all"),
    ):
        if pairs is snapshot.cache.get(cache_key):
            entry = snapshot.cache.get(blocks_key)
            # Revalidate on both the source array and the block limit (the
            # limit is env-tunable, so a cached split may be stale).
            if entry is None or entry[0] != limit or entry[1] is not pairs:
                entry = (limit, pairs, build())
                snapshot.cache[blocks_key] = entry
            return entry[2]
    return build()


def score_pairs(metric, snapshot: Snapshot, pairs: np.ndarray) -> np.ndarray:
    """Score ``pairs`` under a fitted metric via the block protocol.

    The routing entry point shared by the experiment runner, the serving
    hot path, and ad-hoc callers: one :class:`CandidateBlock` pipeline
    with ``kernels.block`` spans and per-block size/latency telemetry.
    """
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.float64)
    blocks = blocks_for(snapshot, pairs)
    record = telemetry.metrics.enabled
    traced = telemetry.tracer.enabled
    parts = []
    for i, block in enumerate(blocks):
        started = time.perf_counter() if record else 0.0
        if traced:
            with telemetry.tracer.span(
                "kernels.block", metric=metric.name, block=i, pairs=len(block)
            ):
                scores = metric.score_block(block)
        else:
            scores = metric.score_block(block)
        if record:
            elapsed = time.perf_counter() - started
            telemetry.metrics.counter("kernels.blocks", metric=metric.name).inc()
            telemetry.metrics.histogram(
                "kernels.block_pairs", bounds=SIZE_BUCKETS
            ).observe(len(block))
            telemetry.metrics.histogram(
                "kernels.block_seconds", metric=metric.name
            ).observe(elapsed)
        parts.append(np.asarray(scores, dtype=np.float64))
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)
