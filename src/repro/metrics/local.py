"""Common-neighbourhood heuristics: CN, JC, AA, RA (Table 3).

All four reduce to weighted 2-hop path counts, computed as one sparse
matrix product ``A @ diag(w) @ A`` with a per-intermediate-node weight:

======  ==========================  =====================
metric  weight on intermediate w    normalisation
======  ==========================  =====================
CN      1                           —
JC      1                           / |Γ(u) ∪ Γ(v)|
AA      1 / log(deg(w))             —
RA      1 / deg(w)                  —
======  ==========================  =====================
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    adjacency,
    cached,
    degrees,
    matrix_values,
    pairs_to_indices,
    register,
    two_hop_matrix,
)


def weighted_two_hop(snapshot: Snapshot, weights: np.ndarray, key: str) -> sp.csr_matrix:
    """Cached ``A @ diag(weights) @ A`` for a per-node weight vector."""
    def compute() -> sp.csr_matrix:
        a = adjacency(snapshot)
        return (a @ sp.diags(weights) @ a).tocsr()

    return cached(snapshot, key, compute)


def inv_log_degree_weights(deg: np.ndarray) -> np.ndarray:
    """``1 / log(deg)`` with degree-1 nodes zeroed.

    A degree-1 node can never be a common neighbour of a distinct pair, so
    zeroing it changes no pair score while avoiding division by log(1)=0.
    Shared with the delta engine so both sides build bit-identical weight
    vectors from the same degree column.
    """
    out = np.zeros_like(deg)
    mask = deg > 1
    out[mask] = 1.0 / np.log(deg[mask])
    return out


def inv_degree_weights(deg: np.ndarray) -> np.ndarray:
    """``1 / deg`` with isolated nodes zeroed (the RA weight vector)."""
    out = np.zeros_like(deg)
    mask = deg > 0
    out[mask] = 1.0 / deg[mask]
    return out


def _safe_inv_log_degree(snapshot: Snapshot) -> np.ndarray:
    return inv_log_degree_weights(degrees(snapshot))


def _safe_inv_degree(snapshot: Snapshot) -> np.ndarray:
    return inv_degree_weights(degrees(snapshot))


#: snapshot-cache key under which the delta engine seeds warm score tables:
#: ``{"keys": sorted packed position keys, "<metric>": float64 scores}``.
DELTA_SCORES_KEY = "delta_scores"


def has_delta_scores(snapshot: Snapshot, name: str) -> bool:
    """True when the snapshot carries a delta-maintained table for ``name``."""
    table = snapshot.cache.get(DELTA_SCORES_KEY)
    return table is not None and name in table


def delta_backed_scores(
    snapshot: Snapshot, name: str, pairs: np.ndarray
) -> "np.ndarray | None":
    """Serve pair scores from the delta engine's warm table, if possible.

    Returns None — and the caller falls back to the matrix path — when the
    snapshot has no table for ``name``, a pair's endpoint is unknown, or a
    pair is missing from the table (the table covers exactly the 2-hop
    candidate set; anything outside it scores 0 on these metrics, but the
    matrix path handles arbitrary pairs uniformly, so it keeps that job).
    """
    table = snapshot.cache.get(DELTA_SCORES_KEY)
    if table is None or name not in table:
        return None
    # Fast path: scoring the snapshot's own candidate enumeration — the
    # overwhelmingly common call — needs no key lookup at all, because the
    # table rows are maintained in exactly that (row-major) order.
    if pairs is snapshot.cache.get("pairs_two_hop") and len(pairs) == len(
        table["keys"]
    ):
        return table[name].copy()
    from repro.utils.pairs import encode_position_pairs

    try:
        rows, cols = pairs_to_indices(snapshot, pairs)
    except KeyError:
        return None
    wanted = encode_position_pairs(rows, cols)
    keys = table["keys"]
    pos = np.searchsorted(keys, wanted)
    safe = np.minimum(pos, max(len(keys) - 1, 0))
    if len(keys) == 0 or not np.all(keys[safe] == wanted):
        return None
    return np.ascontiguousarray(table[name][safe])


@register
class CommonNeighbors(SimilarityMetric):
    """CN [32]: ``|Γ(u) ∩ Γ(v)|``."""

    name = "CN"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "CommonNeighbors":
        self.snapshot = snapshot
        # The A^2 product is deferred until a score() call actually needs
        # it: delta-warm snapshots serve the whole candidate set from their
        # maintained table, and the kernel path (score_block) counts common
        # neighbours from the shared expansion without any matrix at all.
        self._matrix = None
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, pairs)
        if warm is not None:
            return warm
        if self._matrix is None:
            self._matrix = two_hop_matrix(snapshot)
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)

    def score_block(self, block) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, block.pairs)
        if warm is not None:
            return warm
        return block.counts().copy()


@register
class JaccardCoefficient(SimilarityMetric):
    """JC [23]: ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|``."""

    name = "JC"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "JaccardCoefficient":
        self.snapshot = snapshot
        self._matrix = None  # A^2, built on the first score() call
        self._deg = degrees(snapshot)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        if self._matrix is None:
            self._matrix = two_hop_matrix(snapshot)
        rows, cols = pairs_to_indices(snapshot, pairs)
        cn = matrix_values(self._matrix, rows, cols)
        union = self._deg[rows] + self._deg[cols] - cn
        out = np.zeros_like(cn)
        np.divide(cn, union, out=out, where=union > 0)
        return out

    def score_block(self, block) -> np.ndarray:
        self._require_fit()
        cn = block.counts()
        deg_u, deg_v = block.degrees()
        union = deg_u + deg_v - cn
        out = np.zeros_like(cn)
        np.divide(cn, union, out=out, where=union > 0)
        return out


@register
class AdamicAdar(SimilarityMetric):
    """AA [2]: ``sum over common neighbours w of 1 / log(deg(w))``."""

    name = "AA"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "AdamicAdar":
        self.snapshot = snapshot
        self._weights = _safe_inv_log_degree(snapshot)
        self._matrix = None  # built on the first score() call that needs it
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, pairs)
        if warm is not None:
            return warm
        if self._matrix is None:
            self._matrix = weighted_two_hop(snapshot, self._weights, "AA_mat")
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)

    def score_block(self, block) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, block.pairs)
        if warm is not None:
            return warm
        return block.weighted(self._weights, self.name).copy()


@register
class ResourceAllocation(SimilarityMetric):
    """RA [45]: ``sum over common neighbours w of 1 / deg(w)``."""

    name = "RA"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "ResourceAllocation":
        self.snapshot = snapshot
        self._weights = _safe_inv_degree(snapshot)
        self._matrix = None  # built on the first score() call that needs it
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, pairs)
        if warm is not None:
            return warm
        if self._matrix is None:
            self._matrix = weighted_two_hop(snapshot, self._weights, "RA_mat")
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)

    def score_block(self, block) -> np.ndarray:
        snapshot = self._require_fit()
        warm = delta_backed_scores(snapshot, self.name, block.pairs)
        if warm is not None:
            return warm
        return block.weighted(self._weights, self.name).copy()
