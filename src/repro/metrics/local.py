"""Common-neighbourhood heuristics: CN, JC, AA, RA (Table 3).

All four reduce to weighted 2-hop path counts, computed as one sparse
matrix product ``A @ diag(w) @ A`` with a per-intermediate-node weight:

======  ==========================  =====================
metric  weight on intermediate w    normalisation
======  ==========================  =====================
CN      1                           —
JC      1                           / |Γ(u) ∪ Γ(v)|
AA      1 / log(deg(w))             —
RA      1 / deg(w)                  —
======  ==========================  =====================
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.snapshots import Snapshot
from repro.metrics.base import (
    SimilarityMetric,
    adjacency,
    cached,
    degrees,
    matrix_values,
    pairs_to_indices,
    register,
    two_hop_matrix,
)


def weighted_two_hop(snapshot: Snapshot, weights: np.ndarray, key: str) -> sp.csr_matrix:
    """Cached ``A @ diag(weights) @ A`` for a per-node weight vector."""
    def compute() -> sp.csr_matrix:
        a = adjacency(snapshot)
        return (a @ sp.diags(weights) @ a).tocsr()

    return cached(snapshot, key, compute)


def _safe_inv_log_degree(snapshot: Snapshot) -> np.ndarray:
    """``1 / log(deg)`` with degree-1 nodes zeroed.

    A degree-1 node can never be a common neighbour of a distinct pair, so
    zeroing it changes no pair score while avoiding division by log(1)=0.
    """
    deg = degrees(snapshot)
    out = np.zeros_like(deg)
    mask = deg > 1
    out[mask] = 1.0 / np.log(deg[mask])
    return out


def _safe_inv_degree(snapshot: Snapshot) -> np.ndarray:
    deg = degrees(snapshot)
    out = np.zeros_like(deg)
    mask = deg > 0
    out[mask] = 1.0 / deg[mask]
    return out


@register
class CommonNeighbors(SimilarityMetric):
    """CN [32]: ``|Γ(u) ∩ Γ(v)|``."""

    name = "CN"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "CommonNeighbors":
        self.snapshot = snapshot
        self._matrix = two_hop_matrix(snapshot)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)


@register
class JaccardCoefficient(SimilarityMetric):
    """JC [23]: ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|``."""

    name = "JC"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "JaccardCoefficient":
        self.snapshot = snapshot
        self._matrix = two_hop_matrix(snapshot)
        self._deg = degrees(snapshot)
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        cn = matrix_values(self._matrix, rows, cols)
        union = self._deg[rows] + self._deg[cols] - cn
        out = np.zeros_like(cn)
        np.divide(cn, union, out=out, where=union > 0)
        return out


@register
class AdamicAdar(SimilarityMetric):
    """AA [2]: ``sum over common neighbours w of 1 / log(deg(w))``."""

    name = "AA"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "AdamicAdar":
        self.snapshot = snapshot
        self._matrix = weighted_two_hop(snapshot, _safe_inv_log_degree(snapshot), "AA_mat")
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)


@register
class ResourceAllocation(SimilarityMetric):
    """RA [45]: ``sum over common neighbours w of 1 / deg(w)``."""

    name = "RA"
    candidate_strategy = "two_hop"

    def fit(self, snapshot: Snapshot) -> "ResourceAllocation":
        self.snapshot = snapshot
        self._matrix = weighted_two_hop(snapshot, _safe_inv_degree(snapshot), "RA_mat")
        return self

    def score(self, pairs: np.ndarray) -> np.ndarray:
        snapshot = self._require_fit()
        rows, cols = pairs_to_indices(snapshot, pairs)
        return matrix_values(self._matrix, rows, cols)
