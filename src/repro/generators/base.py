"""Growth engine for synthetic temporal social-network traces.

The engine produces a :class:`~repro.graph.dyngraph.TemporalGraph` by
simulating edge creation events one at a time along an exponential growth
schedule:

- node ``i`` arrives at ``t_i`` such that the node count grows exponentially
  from ``n_seed`` to ``total_nodes`` over ``duration_days``;
- edge ``m`` is created at ``t_m`` such that the edge count grows
  exponentially from the seed edges to ``total_edges`` — because edges grow
  faster than nodes the network *densifies*, reproducing Figs. 1-2;
- the initiating endpoint of an edge is drawn with recency reinforcement
  (endpoints of recent edges are likely to act again), producing the bursty
  node activity behind the paper's temporal filters (Figs. 13-14);
- the target endpoint is drawn by a per-config mixture of triadic closure,
  degree-preferential attachment, creator (supernode) attachment and uniform
  choice, which is what differentiates friendship-style from
  subscription-style networks (Section 4.2).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.graph.dyngraph import TemporalGraph
from repro.utils.rng import ensure_rng


@dataclass
class GrowthConfig:
    """All knobs of the growth engine.

    The defaults describe a generic friendship network; the presets in
    :mod:`repro.generators.presets` override them per target dataset.
    """

    name: str = "synthetic"
    # Size trajectory.
    n_seed: int = 60
    seed_edges: int = 150
    total_nodes: int = 800
    total_edges: int = 6000
    duration_days: float = 120.0
    # Initiator selection.
    newcomer_prob: float = 0.25       # edge initiated by a just-arrived node
    recent_initiator_prob: float = 0.5  # initiator re-drawn from recent actors
    recent_window_days: float = 7.0   # size of the "recent actors" pool
    # Target selection mixture (remainder of the mass goes to uniform).
    triadic_prob: float = 0.65        # close a triangle via a 2-hop walk
    # When set, the triadic share interpolates linearly from triadic_prob to
    # this value over the trace duration.  A rising share reproduces the
    # densification-driven growth of lambda_2 on Renren/YouTube; a falling
    # one reproduces Facebook's regional-sampling decline (Section 4.2).
    triadic_prob_final: "float | None" = None
    preferential_prob: float = 0.2    # degree-proportional target
    creator_prob: float = 0.0         # target drawn from the creator pool
    # Creator (supernode) population, only used when creator_prob > 0.
    creator_fraction: float = 0.0
    creator_fitness_alpha: float = 1.1  # Pareto tail of creator fitness
    # Recency bias inside triadic closure: probability that the intermediate
    # common neighbour is one of the initiator's most recent links.  High
    # values produce the short "CN time gap" of positive pairs (Fig. 15).
    triadic_recent_bias: float = 0.7
    # Probability that a non-triadic target draw is degree-matched to the
    # initiator (pick the closest of 3 candidates).  Friendship networks use
    # this to obtain the positive assortativity of Renren/Facebook.
    assortative_matching: float = 0.0
    # When True only the initiating endpoint joins the recent-actor pool.
    # Subscription networks set this so that passively-subscribed creators
    # do not start initiating edges themselves (which would densify the
    # creator core and inflate clustering).
    recent_actor_initiator_only: bool = False
    # Fallback initiator distribution when neither the newcomer nor the
    # recent-actor branch fires: degree-proportional (True, friendship
    # networks) or uniform (False).  Subscription networks need the uniform
    # fallback — otherwise supernodes initiate edges at each other and build
    # a dense creator core that friendship-style metrics can exploit.
    initiator_degree_fallback: bool = True
    # Expected number of edges a newcomer creates while at the front of the
    # newcomer queue (geometric); controls the share of degree-1..3 nodes.
    newcomer_mean_edges: float = 2.0
    # Degree saturation: when > 0, a proposed target v is accepted with
    # probability saturation / (saturation + deg(v)).  Friendship links need
    # "joint effort from both users" [44], so very-high-degree users accept
    # progressively fewer of the links the heuristics expect them to form —
    # the overprediction bias of Table 5.  0 disables saturation
    # (subscription targets have no such limit).
    degree_saturation: float = 0.0
    # Interest communities: every node gets a community label at arrival and
    # community-biased target draws stay inside it.  This produces the
    # latent block structure that RESCAL-style factorisations exploit on
    # subscription networks (Section 4.2: "condensing the interaction among
    # nodes into a latent space").  0 disables communities.
    num_communities: int = 0
    community_bias: float = 0.0
    # Probability that an edge is initiated by a creator (collaborations /
    # cross-promotion).  Gives subscription networks a thin stream of
    # supernode-supernode edges, which is why PA is "marginally better" on
    # YouTube than on the friendship networks (Section 4.2).
    creator_initiator_prob: float = 0.0
    # Target-side recency: a proposed (non-creator) target v is accepted
    # with probability exp(-idle(v) / tau).  Friendship links need the
    # target to accept the request, i.e. to be around — this is what makes
    # the idle time of the *inactive* endpoint a usable filter criterion
    # (Section 6.1).  0 disables the bias; creator targets are exempt
    # (subscribing needs no consent).
    target_recency_tau: float = 0.0
    max_retries: int = 30

    def validate(self) -> None:
        if self.n_seed < 2:
            raise ValueError("n_seed must be >= 2")
        if self.total_nodes < self.n_seed:
            raise ValueError("total_nodes must be >= n_seed")
        if self.total_edges <= self.seed_edges:
            raise ValueError("total_edges must exceed seed_edges")
        max_seed_edges = self.n_seed * (self.n_seed - 1) // 2
        if self.seed_edges > max_seed_edges:
            raise ValueError(
                f"seed_edges={self.seed_edges} exceeds the {max_seed_edges} "
                f"possible pairs among {self.n_seed} seed nodes"
            )
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        peak_triadic = max(self.triadic_prob, self.triadic_prob_final or 0.0)
        mixture = peak_triadic + self.preferential_prob + self.creator_prob
        if mixture > 1.0 + 1e-9:
            raise ValueError(f"target-selection mixture sums to {mixture} > 1")
        if self.creator_prob > 0 and self.creator_fraction <= 0:
            raise ValueError("creator_prob > 0 requires a positive creator_fraction")


@dataclass
class _NodeState:
    """Mutable per-node bookkeeping inside the engine."""

    arrival: float
    is_creator: bool = False
    fitness: float = 1.0
    community: int = 0


class GrowthEngine:
    """Simulates one trace from a :class:`GrowthConfig`."""

    def __init__(self, config: GrowthConfig, seed: "int | np.random.Generator | None" = None):
        config.validate()
        self.config = config
        self.rng = ensure_rng(seed)
        self.graph = TemporalGraph()
        self._states: dict[int, _NodeState] = {}
        self._neighbor_order: dict[int, list[int]] = {}
        self._degree_urn: list[int] = []      # node appears once per incident edge
        self._creator_urn: list[int] = []     # creator endpoints only
        self._creators: list[int] = []
        self._creator_fitness_cum: np.ndarray | None = None
        self._community_creators: dict[int, list[int]] = {}
        self._community_members: dict[int, list[int]] = {}
        self._recent_actors: deque[tuple[float, int]] = deque()
        self._newcomer_queue: deque[int] = deque()
        self._next_node_id = 0
        #: edge direction as created: canonical pair -> (initiator, target).
        #: The undirected evaluation ignores this; the directed extension
        #: (repro.extensions.directed) consumes it.
        self.directions: dict[tuple[int, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Growth schedules
    # ------------------------------------------------------------------
    def _node_arrival_time(self, i: int) -> float:
        """Arrival time of the ``i``-th node (0-based), exponential schedule."""
        cfg = self.config
        if i < cfg.n_seed:
            return 0.0
        ratio = cfg.total_nodes / cfg.n_seed
        return 1.0 + (cfg.duration_days - 1.0) * math.log((i + 1) / cfg.n_seed) / math.log(ratio)

    def _edge_time(self, m: int) -> float:
        """Creation time of the ``m``-th edge (0-based), exponential schedule."""
        cfg = self.config
        if m < cfg.seed_edges:
            # Seed edges are spread over the first day.
            return m / max(1, cfg.seed_edges)
        # Exponential schedule over the remaining duration, continuous with
        # the seed phase (starts at day 1).
        ratio = cfg.total_edges / cfg.seed_edges
        return 1.0 + (cfg.duration_days - 1.0) * math.log((m + 1) / cfg.seed_edges) / math.log(ratio)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _spawn_node(self, t: float) -> int:
        cfg = self.config
        node = self._next_node_id
        self._next_node_id += 1
        is_creator = (
            cfg.creator_fraction > 0 and self.rng.random() < cfg.creator_fraction
        )
        fitness = 1.0
        if is_creator:
            # Pareto-tailed fitness produces the heavy supernode skew.
            fitness = float((1.0 + self.rng.pareto(cfg.creator_fitness_alpha)))
        community = (
            int(self.rng.integers(cfg.num_communities)) if cfg.num_communities > 0 else 0
        )
        self._states[node] = _NodeState(
            arrival=t, is_creator=is_creator, fitness=fitness, community=community
        )
        self.graph.add_node(node, t)
        self._community_members.setdefault(community, []).append(node)
        if is_creator:
            self._creators.append(node)
            self._community_creators.setdefault(community, []).append(node)
            self._creator_fitness_cum = None  # invalidate cache
        return node

    def _record_edge(self, u: int, v: int, t: float) -> bool:
        if not self.graph.add_edge(u, v, t):
            return False
        self.directions[(u, v) if u < v else (v, u)] = (u, v)
        self._degree_urn.extend((u, v))
        self._neighbor_order.setdefault(u, []).append(v)
        self._neighbor_order.setdefault(v, []).append(u)
        for node in (u, v):
            if self._states[node].is_creator:
                self._creator_urn.append(node)
        self._recent_actors.append((t, u))
        if not self.config.recent_actor_initiator_only:
            self._recent_actors.append((t, v))
        window = self.config.recent_window_days
        while self._recent_actors and self._recent_actors[0][0] < t - window:
            self._recent_actors.popleft()
        return True

    # ------------------------------------------------------------------
    # Endpoint selection
    # ------------------------------------------------------------------
    def _pick_initiator(self, t: float) -> int:
        cfg = self.config
        if (
            cfg.creator_initiator_prob > 0
            and self._creator_urn
            and self.rng.random() < cfg.creator_initiator_prob
        ):
            return self._creator_urn[int(self.rng.integers(len(self._creator_urn)))]
        r = self.rng.random()
        if self._newcomer_queue and r < cfg.newcomer_prob:
            node = self._newcomer_queue[0]
            # Geometric dwell at the queue front: a newcomer creates
            # ~newcomer_mean_edges edges before yielding to the next arrival.
            if self.rng.random() < 1.0 / max(1.0, cfg.newcomer_mean_edges):
                self._newcomer_queue.popleft()
            return node
        if self._recent_actors and r < cfg.newcomer_prob + cfg.recent_initiator_prob:
            return self._recent_actors[int(self.rng.integers(len(self._recent_actors)))][1]
        if cfg.initiator_degree_fallback:
            return self._degree_urn[int(self.rng.integers(len(self._degree_urn)))]
        return int(self.rng.integers(self._next_node_id))

    def _pick_triadic_target(self, u: int) -> int | None:
        """Two-hop walk from ``u``; weights targets by common-neighbour count."""
        neigh_list = self._neighbor_order.get(u)
        if not neigh_list:
            return None
        if self.rng.random() < self.config.triadic_recent_bias:
            # Walk through one of u's most recently linked neighbours: the
            # recent common-neighbour arrival then precedes the triangle
            # closure, producing the short CN time gaps of positive pairs
            # (Fig. 15).
            candidates = neigh_list[-3:]
        else:
            candidates = neigh_list
        w = candidates[int(self.rng.integers(len(candidates)))]
        two_hop = list(self.graph.neighbors(w))
        v = two_hop[int(self.rng.integers(len(two_hop)))]
        if v == u or self.graph.has_edge(u, v):
            return None
        return v

    def _pick_creator_target(self, u: int) -> int | None:
        cfg = self.config
        if not self._creators:
            return None
        if self._states[u].is_creator:
            # Creator-to-creator collaborations spread uniformly over the
            # creator pool: concentrating them on the top creators would
            # give two-subscription users closed triangles far too often,
            # inflating clustering beyond anything subscription-like.
            return self._creators[int(self.rng.integers(len(self._creators)))]
        if cfg.community_bias > 0 and self.rng.random() < cfg.community_bias:
            # Interest-driven discovery: a fitness-weighted creator from the
            # subscriber's own community.
            pool = self._community_creators.get(self._states[u].community)
            if pool:
                fit = np.asarray([self._states[c].fitness for c in pool])
                cum = np.cumsum(fit)
                idx = int(np.searchsorted(cum, self.rng.random() * cum[-1]))
                return pool[min(idx, len(pool) - 1)]
        # Mixture of fitness-weighted (discovery of intrinsically popular
        # creators) and degree-weighted (rich-get-richer among creators).
        if self._creator_urn and self.rng.random() < 0.5:
            return self._creator_urn[int(self.rng.integers(len(self._creator_urn)))]
        if self._creator_fitness_cum is None:
            fit = np.asarray([self._states[c].fitness for c in self._creators])
            self._creator_fitness_cum = np.cumsum(fit)
        total = self._creator_fitness_cum[-1]
        idx = int(np.searchsorted(self._creator_fitness_cum, self.rng.random() * total))
        return self._creators[min(idx, len(self._creators) - 1)]

    def _triadic_prob_at(self, t: float) -> float:
        cfg = self.config
        if cfg.triadic_prob_final is None:
            return cfg.triadic_prob
        frac = min(1.0, max(0.0, t / cfg.duration_days))
        return cfg.triadic_prob + frac * (cfg.triadic_prob_final - cfg.triadic_prob)

    def _pick_target(self, u: int, node_count: int, t: float) -> int | None:
        cfg = self.config
        triadic = self._triadic_prob_at(t)
        r = self.rng.random()
        if r < triadic:
            return self._pick_triadic_target(u)
        r -= triadic
        if r < cfg.creator_prob:
            return self._pick_creator_target(u)
        r -= cfg.creator_prob
        if r < cfg.preferential_prob and self._degree_urn:
            urn = self._degree_urn
        elif (
            cfg.num_communities > 0
            and cfg.community_bias > 0
            and self.rng.random() < cfg.community_bias
        ):
            urn = self._community_members[self._states[u].community]
        else:
            urn = None  # uniform over all nodes

        def draw() -> int:
            if urn is None:
                return int(self.rng.integers(node_count))
            return urn[int(self.rng.integers(len(urn)))]
        if cfg.assortative_matching > 0 and self.rng.random() < cfg.assortative_matching:
            # Degree-matched choice: closest of three candidates to deg(u).
            du = self.graph.degree(u)
            candidates = [draw() for _ in range(3)]
            return min(candidates, key=lambda v: abs(self.graph.degree(v) - du))
        return draw()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> TemporalGraph:
        """Generate and return the full trace."""
        cfg = self.config
        # Seed population and a connected-ish seed graph over the first day.
        for _ in range(cfg.n_seed):
            self._spawn_node(0.0)
        seed_nodes = list(range(cfg.n_seed))
        placed = 0
        # A ring guarantees the seed is connected, remaining seed edges random.
        for i in range(cfg.n_seed):
            if placed >= cfg.seed_edges:
                break
            if self._record_edge(i, (i + 1) % cfg.n_seed, self._edge_time(placed)):
                placed += 1
        while placed < cfg.seed_edges:
            u, v = self.rng.choice(cfg.n_seed, size=2, replace=False)
            if self._record_edge(int(u), int(v), self._edge_time(placed)):
                placed += 1

        next_arrival_index = cfg.n_seed
        m = placed
        while m < cfg.total_edges:
            t = self._edge_time(m)
            # Admit all nodes whose scheduled arrival has passed; they wait
            # in the newcomer queue until they have created their first edges.
            while (
                next_arrival_index < cfg.total_nodes
                and self._node_arrival_time(next_arrival_index) <= t
            ):
                self._newcomer_queue.append(self._spawn_node(t))
                next_arrival_index += 1
            placed_edge = False
            for _ in range(cfg.max_retries):
                u = self._pick_initiator(t)
                v = self._pick_target(u, self._next_node_id, t)
                if v is None or v == u or self.graph.has_edge(u, v):
                    continue
                if cfg.degree_saturation > 0:
                    accept = cfg.degree_saturation / (
                        cfg.degree_saturation + self.graph.degree(v)
                    )
                    if self.rng.random() > accept:
                        continue
                if cfg.target_recency_tau > 0 and not self._states[v].is_creator:
                    idle = self.graph.idle_time(v, t)
                    if self.rng.random() > math.exp(-idle / cfg.target_recency_tau):
                        continue
                if self._record_edge(u, v, t):
                    placed_edge = True
                    break
            if not placed_edge:
                # Uniform fallback keeps the edge schedule exact even when the
                # mixture keeps proposing existing edges (dense late phase).
                for _ in range(1000):
                    u, v = self.rng.integers(self._next_node_id, size=2)
                    if u != v and not self.graph.has_edge(int(u), int(v)):
                        self._record_edge(int(u), int(v), t)
                        placed_edge = True
                        break
            if not placed_edge:
                raise RuntimeError(
                    "growth engine could not place an edge; the graph may be "
                    "nearly complete — lower total_edges or raise total_nodes"
                )
            m += 1
        return self.graph


def generate_trace(
    config: GrowthConfig, seed: "int | np.random.Generator | None" = None
) -> TemporalGraph:
    """Convenience wrapper: build the engine and run it."""
    return GrowthEngine(config, seed=seed).run()
