"""Subscription-network configuration (YouTube style).

Subscription links are one-sided: a (usually fresh, low-degree) subscriber
attaches to a popular creator.  The resulting graph has heavy-tailed degrees
with supernodes, negative assortativity, low clustering, and ~80% of nodes
with degree <= 3 — exactly the properties Section 4.2 uses to explain why
Rescal and PA behave differently on YouTube while the common-neighbour
family falls behind.
"""

from __future__ import annotations

from repro.generators.base import GrowthConfig


def subscription_config(
    name: str = "subscription",
    total_nodes: int = 2600,
    total_edges: int = 7000,
    duration_days: float = 100.0,
    n_seed: int = 80,
    seed_edges: int = 160,
    creator_fraction: float = 0.03,
    creator_prob: float = 0.6,
    triadic_prob: float = 0.02,
    triadic_prob_final: "float | None" = 0.05,
    preferential_prob: float = 0.12,
) -> GrowthConfig:
    """A subscription-style :class:`GrowthConfig`.

    Most targets are drawn from the fitness/degree-weighted creator pool;
    triadic closure is nearly absent; initiators are dominated by newcomers
    who subscribe a handful of times and go quiet.
    """
    return GrowthConfig(
        name=name,
        n_seed=n_seed,
        seed_edges=seed_edges,
        total_nodes=total_nodes,
        total_edges=total_edges,
        duration_days=duration_days,
        newcomer_prob=0.6,
        recent_initiator_prob=0.25,
        triadic_prob=triadic_prob,
        triadic_prob_final=triadic_prob_final,
        preferential_prob=preferential_prob,
        creator_prob=creator_prob,
        creator_fraction=creator_fraction,
        creator_fitness_alpha=1.05,
        triadic_recent_bias=0.5,
        recent_actor_initiator_only=True,
        initiator_degree_fallback=False,
        newcomer_mean_edges=1.6,
        num_communities=12,
        community_bias=0.75,
        creator_initiator_prob=0.015,
        target_recency_tau=12.0,
    )
