"""Calibrated stand-ins for the paper's three traces (Table 2).

Each preset returns a full :class:`~repro.graph.dyngraph.TemporalGraph`
whose *relative* characteristics mirror the original datasets at roughly
1/1000 scale:

===========  ===========================  ==========================
paper trace  key properties               preset
===========  ===========================  ==========================
Facebook     regional friendship sample,  :func:`facebook_like`
             dense, assortative
Renren       non-sampled friendship       :func:`renren_like`
             network, densest, fastest
             growth
YouTube      subscription network,        :func:`youtube_like`
             sparse, supernodes,
             negative assortativity
===========  ===========================  ==========================

``scale`` multiplies node and edge counts; tests use ``scale < 1`` while the
benchmarks default to ``scale = 1``.  ``SNAPSHOT_DELTAS`` gives a per-preset
snapshot delta that yields a paper-like sequence length (about 20 snapshots).
"""

from __future__ import annotations

import numpy as np

from repro.generators.base import generate_trace
from repro.generators.social import social_config
from repro.generators.subscription import subscription_config
from repro.graph.dyngraph import TemporalGraph

#: Snapshot delta (new edges per snapshot) per preset at scale=1, chosen like
#: Table 2: >15 snapshots, snapshot spacing well under two weeks.
SNAPSHOT_DELTAS = {
    "facebook": 260,
    "renren": 650,
    "youtube": 250,
}


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def facebook_like(
    scale: float = 1.0, seed: "int | np.random.Generator | None" = 0
) -> TemporalGraph:
    """Facebook-New-Orleans-style friendship trace.

    Dense, assortative, triadic-closure dominated.  The "regional sample"
    aspect of the original (which depresses the late 2-hop edge ratio) is
    modelled with a slightly lower triadic share than Renren.
    """
    config = social_config(
        name="facebook",
        total_nodes=_scaled(850, scale, 40),
        total_edges=_scaled(7800, scale, 220),
        duration_days=120.0,
        n_seed=_scaled(60, scale, 10),
        seed_edges=_scaled(150, scale, 20),
        # Regional subsampling breaks an increasing share of cross-regional
        # closures as the network grows: the triadic share (and with it
        # lambda_2) declines over the Facebook trace (Section 4.2).
        triadic_prob=0.72,
        triadic_prob_final=0.45,
        preferential_prob=0.08,
    )
    return generate_trace(config, seed=seed)


def renren_like(
    scale: float = 1.0, seed: "int | np.random.Generator | None" = 0
) -> TemporalGraph:
    """Renren-style friendship trace: non-sampled, densest, fastest growth."""
    config = social_config(
        name="renren",
        total_nodes=_scaled(1300, scale, 40),
        total_edges=_scaled(18000, scale, 260),
        duration_days=180.0,
        n_seed=_scaled(80, scale, 10),
        seed_edges=_scaled(300, scale, 24),
        # Densification: the non-sampled Renren closes triangles at a
        # growing rate, so lambda_2 rises over the trace (Section 4.2).
        triadic_prob=0.5,
        triadic_prob_final=0.85,
        preferential_prob=0.08,
        recent_initiator_prob=0.55,
    )
    return generate_trace(config, seed=seed)


def youtube_like(
    scale: float = 1.0, seed: "int | np.random.Generator | None" = 0
) -> TemporalGraph:
    """YouTube-style subscription trace: sparse, supernodes, disassortative."""
    config = subscription_config(
        name="youtube",
        total_nodes=_scaled(2600, scale, 60),
        total_edges=_scaled(7000, scale, 250),
        duration_days=100.0,
        n_seed=_scaled(80, scale, 12),
        seed_edges=_scaled(160, scale, 20),
    )
    return generate_trace(config, seed=seed)


#: name -> (trace factory, snapshot delta at scale=1)
DATASETS = {
    "facebook": facebook_like,
    "renren": renren_like,
    "youtube": youtube_like,
}


def load(name: str, scale: float = 1.0, seed: "int | np.random.Generator | None" = 0) -> TemporalGraph:
    """Load a preset trace by name (``facebook`` / ``renren`` / ``youtube``)."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return factory(scale=scale, seed=seed)


def snapshot_delta(name: str, scale: float = 1.0) -> int:
    """Scaled snapshot delta for a preset (keeps ~20 snapshots at any scale)."""
    return max(10, int(round(SNAPSHOT_DELTAS[name] * scale)))
