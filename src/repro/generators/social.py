"""Friendship-network configurations (Facebook / Renren style).

Friendship links require "joint efforts from both users" [44], so growth is
dominated by triadic closure among recently active users: this yields high
clustering, positive degree assortativity, and a 2-hop edge ratio that rises
as the network densifies — the structural signatures Section 4.2 attributes
to Renren and Facebook.
"""

from __future__ import annotations

from repro.generators.base import GrowthConfig


def social_config(
    name: str = "social",
    total_nodes: int = 800,
    total_edges: int = 6000,
    duration_days: float = 120.0,
    n_seed: int = 60,
    seed_edges: int = 150,
    triadic_prob: float = 0.65,
    triadic_prob_final: "float | None" = None,
    preferential_prob: float = 0.15,
    newcomer_prob: float = 0.25,
    recent_initiator_prob: float = 0.5,
) -> GrowthConfig:
    """A friendship-style :class:`GrowthConfig`.

    The default mixture — mostly triadic closure, a slice of mild
    preferential attachment, the rest uniform — produces clustering around
    0.1-0.2 and positive assortativity at the preset scales.
    """
    return GrowthConfig(
        name=name,
        n_seed=n_seed,
        seed_edges=seed_edges,
        total_nodes=total_nodes,
        total_edges=total_edges,
        duration_days=duration_days,
        newcomer_prob=newcomer_prob,
        recent_initiator_prob=recent_initiator_prob,
        triadic_prob=triadic_prob,
        triadic_prob_final=triadic_prob_final,
        preferential_prob=preferential_prob,
        creator_prob=0.0,
        creator_fraction=0.0,
        assortative_matching=0.7,
        degree_saturation=60.0,
        target_recency_tau=8.0,
    )
