"""Synthetic temporal-trace generators.

The paper's datasets (Facebook New Orleans, Renren, YouTube) are large
proprietary/contributed traces.  This subpackage generates laptop-scale
synthetic equivalents that reproduce the structural and temporal signatures
the paper's analysis actually depends on:

- exponential node and edge growth with densification (Fig. 1, Figs. 2-4),
- triadic-closure-dominated, positively assortative friendship networks
  (Facebook / Renren), with Renren denser and non-sampled,
- a negatively assortative, supernode-driven subscription network (YouTube)
  where most nodes have degree <= 3 and a large share of new edges touch
  the top-0.1% highest-degree nodes,
- bursty node activity: recently active nodes create most new edges, and
  recent common-neighbour arrival precedes triangle closure (Section 6).
"""

from repro.generators.base import GrowthConfig, GrowthEngine
from repro.generators.fit import fit_growth_config, measure_mechanisms
from repro.generators.presets import facebook_like, renren_like, youtube_like
from repro.generators.social import social_config
from repro.generators.subscription import subscription_config

__all__ = [
    "GrowthConfig",
    "GrowthEngine",
    "facebook_like",
    "renren_like",
    "youtube_like",
    "social_config",
    "subscription_config",
    "fit_growth_config",
    "measure_mechanisms",
]
