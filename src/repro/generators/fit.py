"""Fit a GrowthConfig to an observed trace.

The presets are calibrated by hand to the paper's three networks.  For a
*new* trace (loaded with :mod:`repro.graph.io`), ``fit_growth_config``
measures the mechanisms the engine models and returns a config whose
synthetic output mimics the observation:

- size trajectory: seed/total node and edge counts, duration;
- **triadic share**: the fraction of new edges that close a 2-hop pair at
  creation time — measured exactly, in one pass, with the incremental
  candidate tracker; measured separately for the first and second half of
  the trace to capture the lambda_2 trend (``triadic_prob_final``);
- **newcomer share**: edges created by a node less than a day old;
- **recency**: median initiator idle time at edge creation, mapped to the
  recent-actor share;
- assortativity sign, mapped to degree-matched target choice.

The fit is deliberately method-of-moments simple: the goal is a starting
point whose structural signatures are in the right region, not a maximum
likelihood estimate.
"""

from __future__ import annotations

import numpy as np

from repro.graph.delta import IncrementalNeighborhood
from repro.generators.base import GrowthConfig
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.graph.stats import degree_assortativity


def measure_mechanisms(trace: TemporalGraph) -> dict[str, float]:
    """One pass over the trace measuring the engine's target mixture.

    Returns a dict with ``triadic_share`` (overall, first and second half),
    ``newcomer_share``, and ``median_initiator_idle``.
    """
    if trace.num_edges < 10:
        raise ValueError("trace too short to measure mechanisms")
    tracker = IncrementalNeighborhood()
    two_hop_closures = 0
    closures_first, closures_second = 0, 0
    newcomer_edges = 0
    idle_samples: list[float] = []
    half = trace.num_edges // 2
    for index, (u, v, t) in enumerate(trace.edges()):
        known = tracker.has_edge(u, v) is False and u in tracker._adj and v in tracker._adj
        closes = False
        if known:
            try:
                closes = tracker.common_neighbors(u, v) > 0
            except ValueError:  # pragma: no cover - duplicate edge guard
                closes = False
        if closes:
            two_hop_closures += 1
            if index < half:
                closures_first += 1
            else:
                closures_second += 1
        # Newcomer: an endpoint that arrived less than a day before t.
        if min(t - trace.node_arrival_time(u), t - trace.node_arrival_time(v)) < 1.0:
            newcomer_edges += 1
        else:
            idle_samples.append(
                min(trace.idle_time(u, t - 1e-9), trace.idle_time(v, t - 1e-9))
            )
        tracker.add_edge(u, v)
    edges = trace.num_edges
    return {
        "triadic_share": two_hop_closures / edges,
        "triadic_share_first_half": closures_first / max(1, half),
        "triadic_share_second_half": closures_second / max(1, edges - half),
        "newcomer_share": newcomer_edges / edges,
        "median_initiator_idle": float(np.median(idle_samples)) if idle_samples else 0.0,
    }


def fit_growth_config(trace: TemporalGraph, name: str = "fitted") -> GrowthConfig:
    """Method-of-moments GrowthConfig for an observed trace."""
    mechanisms = measure_mechanisms(trace)
    snapshot = Snapshot(trace, trace.num_edges)
    assortativity = degree_assortativity(snapshot)
    duration = max(1.0, trace.end_time - trace.start_time)

    nodes = sorted(trace.nodes(), key=trace.node_arrival_time)
    n_seed = max(2, sum(1 for u in nodes if trace.node_arrival_time(u) <= trace.start_time + 1.0))
    seed_edges = max(1, trace.edge_index_at_time(trace.start_time + 1.0))
    seed_edges = min(seed_edges, n_seed * (n_seed - 1) // 2)
    if seed_edges >= trace.num_edges:
        # Burst traces (everything in the first day): treat the first tenth
        # of the stream as the seed.
        seed_edges = max(1, trace.num_edges // 10)
        n_seed = max(n_seed, int(np.ceil((1 + np.sqrt(1 + 8 * seed_edges)) / 2)))

    triadic_first = min(0.9, mechanisms["triadic_share_first_half"])
    triadic_second = min(0.9, mechanisms["triadic_share_second_half"])
    newcomer = min(0.8, mechanisms["newcomer_share"])
    # Short initiator idle => strong recency reinforcement.
    recency = 0.6 if mechanisms["median_initiator_idle"] < duration / 20 else 0.3
    recency = min(recency, 0.95 - newcomer)

    return GrowthConfig(
        name=name,
        n_seed=n_seed,
        seed_edges=seed_edges,
        total_nodes=max(trace.num_nodes, n_seed),
        total_edges=trace.num_edges,
        duration_days=duration,
        newcomer_prob=newcomer,
        recent_initiator_prob=recency,
        triadic_prob=triadic_first,
        triadic_prob_final=triadic_second,
        preferential_prob=min(0.2, max(0.0, 1.0 - max(triadic_first, triadic_second) - 0.1)),
        assortative_matching=0.7 if assortativity > 0.05 else 0.0,
        degree_saturation=60.0 if assortativity > 0.05 else 0.0,
    )
