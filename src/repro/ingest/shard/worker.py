"""Shard worker: parse one chunk exactly as the serial reader would.

A worker runs the *chunk-local* half of the serial pipeline on one
:class:`~repro.ingest.shard.planner.ShardSpec` — the same
``_consume_lines`` blocking/parse code and the same row-local taxonomy
checks (:func:`repro.ingest.loader._validate_local`), with
``defer_strict`` on so a strict-class offender becomes a *marker* shipped
back to the driver instead of an exception raised by whichever worker
happened to finish first.  The stream-global checks (out_of_order,
duplicate_edge) are deliberately absent here: they depend on every
preceding event, so the merge stage runs them once over the concatenated
columns (:mod:`repro.ingest.shard.merge`).

Chunk decoding mirrors the serial reader bit for bit: bytes decode with
``errors="replace"`` (``utf-8-sig`` only for a chunk at byte 0 — a BOM is
only a BOM at file start) and lines split under universal-newline rules
via ``io.StringIO(text, newline=None)``, which treats exactly ``\\n``,
``\\r`` and ``\\r\\n`` as terminators — the same set the text-mode file
iterator uses (``str.splitlines`` would split on more, e.g. ``\\x85``).

The pool driver (:func:`run_shards`) reuses the fault-tolerance shape of
``repro.eval.parallel``: per-shard futures, bounded retries, pool rebuild
on ``BrokenProcessPool``, and in-process degradation once the rebuild
budget is spent — a sharded ingest completes (or raises the *ingest*
error, not a pool error) even if every worker process dies.
"""

from __future__ import annotations

import contextlib
import io
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)

import numpy as np

from repro import telemetry
from repro.ingest.loader import (
    _ColumnAccumulator,
    _consume_lines,
    _DeferredStrict,
    _Ingest,
    _validate_local,
    open_trace_text,
)
from repro.ingest.policy import IngestPolicy
from repro.ingest.report import IngestReport
from repro.ingest.shard.planner import ShardSpec

#: attempts per shard before the driver gives up and re-raises.
MAX_ATTEMPTS = 3

#: pool rebuilds tolerated before degrading to in-process parsing.
MAX_POOL_REBUILDS = 2


class ShardIngestError(RuntimeError):
    """A shard failed all its parse attempts; carries the last cause."""

    def __init__(self, spec: ShardSpec, attempts: int, cause: BaseException):
        super().__init__(
            f"shard {spec.index} ({spec.path} bytes "
            f"[{spec.byte_start}, {spec.byte_end})) failed after "
            f"{attempts} attempts: {cause!r}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


def _open_chunk(spec: ShardSpec):
    """Text handle over the chunk, decoded as the serial reader would."""
    if spec.gzip:
        # Gzip shards span the whole file; reuse the serial opener.
        return open_trace_text(spec.path)
    with open(spec.path, "rb") as fh:
        fh.seek(spec.byte_start)
        data = fh.read(spec.byte_end - spec.byte_start)
    codec = "utf-8-sig" if spec.byte_start == 0 else "utf-8"
    return io.StringIO(data.decode(codec, errors="replace"), newline=None)


def _chunk_raw_lines(spec: ShardSpec, wanted: "set[int]") -> "dict[int, str]":
    """Raw text of the wanted (global) line numbers, from this chunk only.

    The shard analogue of ``loader._fetch_lines`` — but it re-reads just
    the worker's own chunk, so quarantine raw-line capture stays parallel
    instead of serialising on a whole-file pass at merge time.
    """
    found: dict[int, str] = {}
    with _open_chunk(spec) as fh:
        for lineno, line in enumerate(fh, start=spec.start_line):
            if lineno in wanted:
                found[lineno] = line.rstrip("\r\n")
                if len(found) == len(wanted):
                    break
    return found


def parse_shard(spec_payload: dict, policy_payload: "dict[str, str]") -> dict:
    """Worker task: chunk -> partial columns + partial report (picklable).

    Never raises for *data* problems — strict offenders come back as the
    ``pending`` (parse-stage) / ``deferred`` (vector-stage) markers so the
    merge stage can pick the globally first one.  Exceptions escaping this
    function are environmental (I/O, OOM) and handled by the pool driver.
    """
    started = time.perf_counter()
    spec = ShardSpec.from_payload(spec_payload)
    policy = IngestPolicy(**policy_payload)
    report = IngestReport(path=spec.path)
    ingest = _Ingest(spec.path, policy, report, defer_strict=True)
    out = _ColumnAccumulator()
    with _open_chunk(spec) as fh:
        _consume_lines(fh, ingest, out, first_lineno=spec.start_line)
    ln, u, v, t = out.concatenate()
    deferred = None
    try:
        ln, u, v, t = _validate_local(ln, u, v, t, ingest)
    except _DeferredStrict as exc:
        deferred = (exc.error_class, exc.lineno, exc.detail)
    raw: dict[int, str] = {}
    if ingest.quarantined:
        raw = _chunk_raw_lines(spec, set(ingest.quarantined))
    return {
        "index": spec.index,
        "ln": ln, "u": u, "v": v, "t": t,
        "lines_total": report.lines_total,
        "blank_lines": report.blank_lines,
        "comment_lines": report.comment_lines,
        "events_parsed": report.events_parsed,
        "format_version": report.format_version,
        "flagged": dict(report.flagged),
        "repaired": dict(report.repaired),
        "quarantined_counts": dict(report.quarantined),
        "quarantined": dict(ingest.quarantined),
        "raw": raw,
        "pending": ingest.pending,
        "deferred": deferred,
        "seconds": time.perf_counter() - started,
        "cached": False,
    }


def _init_shard_worker() -> None:
    """Worker initializer: a forked child must never inherit the driver's
    recording tracer (same rule as ``repro.eval.parallel``)."""
    telemetry.reset()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on dead workers."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        with contextlib.suppress(Exception):
            process.terminate()
    with contextlib.suppress(Exception):
        pool.shutdown(wait=False, cancel_futures=True)


class _PoolRebuild(Exception):
    """Internal: the current pool is unusable; rebuild and resubmit."""


def run_shards(
    specs: "list[ShardSpec]",
    policy: IngestPolicy,
    jobs: int,
    max_attempts: int = MAX_ATTEMPTS,
    max_pool_rebuilds: int = MAX_POOL_REBUILDS,
) -> "tuple[list[dict], dict]":
    """Parse every shard, fault-tolerantly; results in spec order.

    Returns ``(results, stats)`` where ``stats`` counts ``retries``,
    ``pool_rebuilds`` and whether the run ``degraded`` to in-process
    parsing.  Shard results are deterministic functions of (bytes,
    policy), so no recovery path can change the merged output.
    """
    policy_payload = policy.describe()
    payloads = [spec.to_payload() for spec in specs]
    results: "list[dict | None]" = [None] * len(specs)
    attempts = [0] * len(specs)
    last_error: "list[BaseException | None]" = [None] * len(specs)
    stats = {"retries": 0, "pool_rebuilds": 0, "degraded": False}
    workers = min(jobs, len(specs))

    def _run_inline(indices: "list[int]") -> None:
        for i in indices:
            results[i] = parse_shard(payloads[i], policy_payload)

    if workers <= 1:
        _run_inline(list(range(len(specs))))
        return [r for r in results if r is not None], stats

    pending = deque(i for i in range(len(specs)))
    while any(r is None for r in results):
        if stats["pool_rebuilds"] > max_pool_rebuilds:
            stats["degraded"] = True
            _run_inline([i for i in range(len(specs)) if results[i] is None])
            break
        inflight: "dict" = {}  # future -> (shard index, driver start time)
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_shard_worker
        )
        try:
            while pending or inflight:
                while pending and len(inflight) < workers:
                    i = pending.popleft()
                    future = pool.submit(parse_shard, payloads[i], policy_payload)
                    inflight[future] = (i, time.monotonic())
                finished, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in finished:
                    i, started = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        inflight[future] = (i, started)
                        raise
                    except Exception as exc:
                        attempts[i] += 1
                        last_error[i] = exc
                        if attempts[i] >= max_attempts:
                            raise ShardIngestError(
                                specs[i], attempts[i], exc
                            ) from exc
                        stats["retries"] += 1
                        pending.append(i)
                    else:
                        _record_worker_span(specs[i], result, started)
                        results[i] = result
            pool.shutdown(wait=True)
        except BrokenExecutor as exc:
            _terminate_pool(pool)
            stats["pool_rebuilds"] += 1
            # Every in-flight shard is a crash suspect; charge an attempt
            # and requeue (shard parsing is deterministic, so innocents
            # re-run to the same bytes).
            for i, _started in inflight.values():
                attempts[i] += 1
                last_error[i] = exc
                if attempts[i] >= max_attempts + max_pool_rebuilds:
                    raise ShardIngestError(specs[i], attempts[i], exc) from exc
                pending.append(i)
        except BaseException:
            _terminate_pool(pool)
            raise
    return [r for r in results if r is not None], stats


def _record_worker_span(spec: ShardSpec, result: dict, started: float) -> None:
    """Retroactive per-shard span in the driver trace (workers record
    nothing themselves — their tracers are reset at fork)."""
    tracer = telemetry.tracer
    if not tracer.enabled:
        return
    end = time.monotonic()
    tracer.record(
        "ingest.shard.worker",
        started,
        end,
        {
            "shard": spec.index,
            "path": spec.path,
            "byte_start": spec.byte_start,
            "byte_end": spec.byte_end,
            "events": int(result["events_parsed"]),
            "worker_seconds": float(result["seconds"]),
        },
    )


__all__ = [
    "MAX_ATTEMPTS",
    "MAX_POOL_REBUILDS",
    "ShardIngestError",
    "parse_shard",
    "run_shards",
]
