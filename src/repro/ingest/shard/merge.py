"""Ordered merge: fold shard results into one serial-identical stream.

The merge owns the three things a chunk cannot decide alone:

1. **First strict offender.**  Serial semantics: a strict *parse-stage*
   offender raises while reading (before any vectorised check), and among
   vectorised classes the first class in taxonomy order with any offender
   raises, picking its smallest (source, line).  Workers ship markers
   instead of raising; the merge re-raises the globally first one — so a
   strict failure names exactly the line the serial pipeline would have
   named, regardless of worker finish order.
2. **Stream-global checks.**  ``out_of_order`` and ``duplicate_edge``
   depend on every preceding event (a duplicate's first occurrence may
   live in any earlier chunk), so the merge concatenates the partial
   columns in stream order and runs :func:`repro.ingest.loader._validate_stream`
   — literally the serial code — over the whole stream.  Offender keys are
   composite ``source_idx * 2**40 + lineno`` values; for a single-file
   load ``source_idx`` is 0, so the keys *are* the line numbers and the
   strict/quarantine bookkeeping is bit-for-bit the serial one.
3. **Sidecar + report folding.**  Per-class counters sum (worker partials
   plus the merge's own stream-check flags), quarantined lines group per
   source file and write through the serial ``_write_rejects`` (same
   header, same ordering, same bytes), and the merged
   :class:`~repro.ingest.report.IngestReport` carries per-shard timings.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ingest.errors import TraceFormatError
from repro.ingest.loader import (
    _fetch_lines,
    _Ingest,
    _strict_error,
    _validate_stream,
    _write_rejects,
    stream_checksum,
)
from repro.ingest.policy import IngestPolicy
from repro.ingest.report import IngestReport
from repro.ingest.shard.planner import ShardSpec

#: bits reserved for the per-source line number in composite merge keys.
#: 2**40 lines (~1.1e12) per file; numpy int64 holds source_idx < 2**23.
SOURCE_SHIFT = 40

#: taxonomy order of the vector-stage classes workers can defer on.
_LOCAL_CLASS_ORDER = {
    "bad_node_id": 0,
    "nonfinite_time": 1,
    "negative_time": 2,
    "self_loop": 3,
}


def _split_key(key: int) -> "tuple[int, int]":
    return divmod(int(key), 1 << SOURCE_SHIFT)


class _MergeIngest(_Ingest):
    """Policy applier for the stream-global checks over merged columns.

    Identical decision logic to the serial :class:`_Ingest` — only the
    *interpretation* of offender keys changes: they are composite
    ``(source_idx, lineno)`` values, decoded when raising a strict error
    (so the message names the right file) and when recording quarantined
    lines (grouped per source for the sidecar writers).
    """

    def __init__(
        self,
        sources: "list[str]",
        policy: IngestPolicy,
        report: IngestReport,
    ) -> None:
        super().__init__(sources[0], policy, report)
        self.sources = sources
        #: per-source lineno -> class, parallel to ``sources``.
        self.per_source: "list[dict[int, str]]" = [dict() for _ in sources]

    def strict_error(
        self, error_class: str, key: int, detail: str, line: "str | None" = None
    ) -> TraceFormatError:
        source_idx, lineno = _split_key(key)
        return _strict_error(
            error_class, self.sources[source_idx], lineno, detail, line
        )

    def _quarantine_keys(self, error_class: str, keys: np.ndarray) -> None:
        for key in keys.tolist():
            source_idx, lineno = _split_key(key)
            self.per_source[source_idx][lineno] = error_class


def _raise_first_strict(
    specs: "list[ShardSpec]", results: "list[dict]"
) -> None:
    """Re-raise the globally first deferred strict offender, if any."""
    parse_markers = []  # (source_idx, lineno, class, line, detail, path)
    vector_markers = []  # (class_order, source_idx, lineno, class, detail, path)
    for spec, result in zip(specs, results):
        pending = result.get("pending")
        if pending is not None:
            lineno, error_class, line, detail = pending
            parse_markers.append(
                (spec.source_idx, lineno, error_class, line, detail, spec.path)
            )
        deferred = result.get("deferred")
        if deferred is not None:
            error_class, lineno, detail = deferred
            vector_markers.append((
                _LOCAL_CLASS_ORDER[error_class], spec.source_idx, lineno,
                error_class, detail, spec.path,
            ))
    if parse_markers:
        # Serial raises parse-stage offenders while *reading* — before any
        # vectorised check ever runs — so they outrank vector markers.
        source_idx, lineno, error_class, line, detail, path = min(
            parse_markers, key=lambda m: (m[0], m[1])
        )
        raise _strict_error(error_class, path, lineno, detail, line)
    if vector_markers:
        order, source_idx, lineno, error_class, detail, path = min(
            vector_markers, key=lambda m: (m[0], m[1], m[2])
        )
        raise _strict_error(error_class, path, lineno, detail)


def _fold_counts(report: IngestReport, results: "list[dict]") -> None:
    """Sum the worker-partial counters into the merged report."""
    for result in results:
        report.lines_total += result["lines_total"]
        report.blank_lines += result["blank_lines"]
        report.comment_lines += result["comment_lines"]
        report.events_parsed += result["events_parsed"]
        if report.format_version is None and result["format_version"] is not None:
            # Results iterate in stream order, so the first header wins —
            # the same line the serial reader would have taken it from.
            report.format_version = result["format_version"]
        for bucket, key in (
            (report.flagged, "flagged"),
            (report.repaired, "repaired"),
            (report.quarantined, "quarantined_counts"),
        ):
            for error_class, count in result[key].items():
                bucket[error_class] = bucket.get(error_class, 0) + count


def _write_sidecars(
    sources: "list[str]",
    specs: "list[ShardSpec]",
    results: "list[dict]",
    merge_ingest: _MergeIngest,
    quarantine_path: "str | os.PathLike[str] | None",
    report: IngestReport,
) -> None:
    """Write per-source ``.rejects`` sidecars, byte-identical to serial.

    Single-source loads honour ``quarantine_path`` exactly like the
    serial path (default ``<path>.rejects``); multi-source loads derive
    one sidecar per source file (``<source>.rejects``).  Worker-captured
    raw lines cover the chunk-local classes; only lines quarantined by
    the merge's own stream checks need a re-read of their source.
    """
    per_source: "list[dict[int, str]]" = [dict(d) for d in merge_ingest.per_source]
    raw_by_source: "list[dict[int, str]]" = [dict() for _ in sources]
    for spec, result in zip(specs, results):
        per_source[spec.source_idx].update(result["quarantined"])
        raw_by_source[spec.source_idx].update(result["raw"])
    written: list[str] = []
    for source_idx, source in enumerate(sources):
        quarantined = per_source[source_idx]
        if not quarantined:
            continue
        raw = raw_by_source[source_idx]
        missing = set(quarantined) - set(raw)
        if missing:
            raw.update(_fetch_lines(source, missing))
        if len(sources) == 1:
            sidecar = quarantine_path or f"{source}.rejects"
        else:
            sidecar = f"{source}.rejects"
        _write_rejects(sidecar, source, quarantined, raw=raw)
        written.append(str(sidecar))
    if written:
        report.quarantine_path = written[0]
        report.quarantine_paths = written


def merge_shards(
    specs: "list[ShardSpec]",
    results: "list[dict]",
    sources: "list[str]",
    policy: IngestPolicy,
    report: IngestReport,
    quarantine_path: "str | os.PathLike[str] | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Concatenate shard results and finish the serial pipeline.

    ``specs``/``results`` must be parallel lists in stream order.
    Returns the accepted ``(us, vs, ts)`` columns; the merged counters,
    sidecars, checksum and time span land on ``report``.
    """
    if len(sources) > 1 and quarantine_path is not None:
        raise ValueError(
            "quarantine_path applies to single-source loads only; "
            "multi-source shard sets write one <source>.rejects per file"
        )
    _raise_first_strict(specs, results)
    _fold_counts(report, results)
    if results:
        keys = np.concatenate([
            result["ln"] + (spec.source_idx << SOURCE_SHIFT)
            for spec, result in zip(specs, results)
        ])
        u = np.concatenate([result["u"] for result in results])
        v = np.concatenate([result["v"] for result in results])
        t = np.concatenate([result["t"] for result in results])
    else:
        keys = np.zeros(0, dtype=np.int64)
        u = keys.copy()
        v = keys.copy()
        t = np.zeros(0, dtype=np.float64)
    merge_ingest = _MergeIngest(sources, policy, report)
    us, vs, ts = _validate_stream(keys, u, v, t, merge_ingest)
    _write_sidecars(
        sources, specs, results, merge_ingest, quarantine_path, report
    )
    report.events_accepted = len(ts)
    if len(ts):
        report.min_time = float(ts[0])
        report.max_time = float(ts[-1])
    report.checksum = stream_checksum(us, vs, ts)
    return us, vs, ts


__all__ = ["SOURCE_SHIFT", "merge_shards"]
