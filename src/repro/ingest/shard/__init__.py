"""``repro.ingest.shard`` — parallel sharded trace ingest.

Splits one large trace (or a multi-file shard set) into line-aligned
chunks, parses them in a bounded process pool, and merges the partial
results into output *byte-identical* to the serial
:func:`repro.ingest.load_trace` path: same columns, same
``stream_checksum``, same error-taxonomy counts, same rejects sidecar
bytes, and — under a strict policy — the same first offender.

Pipeline::

    plan_shards            parse_shard (xN workers)        merge_shards
    ───────────────►  ───────────────────────────────►  ───────────────►
    line-aligned       _consume_lines + _validate_local   concat in stream
    byte ranges,       per chunk (defer_strict markers    order, re-run
    per-chunk          instead of raises), per-shard      stream-global
    checksums +        quarantine capture                 checks 5-6, fold
    line counts                                           reports/sidecars

Entry points: :func:`scan_shards` (columns + report — what
``scan_trace(jobs=N)`` delegates to), :func:`load_shards` (a
``TemporalGraph``), and the manifest/planner utilities re-exported from
:mod:`~.planner`.  A ``repro-shards v1`` manifest plus its ``.cache``
directory lets a re-ingest skip the *parse* of any shard whose bytes
still hash to the planned checksum (planning always re-scans the bytes —
that is the cheap part — so a stale cache entry can never be served).
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np

from repro import telemetry
from repro.graph.dyngraph import TemporalGraph
from repro.ingest.loader import _record_ingest_metrics
from repro.ingest.policy import IngestPolicy
from repro.ingest.report import IngestReport
from repro.ingest.shard.merge import merge_shards
from repro.ingest.shard.planner import (
    DEFAULT_SHARD_BYTES,
    MANIFEST_FORMAT,
    MIN_SHARD_BYTES,
    ShardSpec,
    manifest_sources,
    plan_shards,
    read_manifest,
    read_manifest_rejects,
    resolve_shard_bytes,
    verify_shard,
    write_manifest,
)
from repro.ingest.shard.worker import (
    MAX_ATTEMPTS,
    MAX_POOL_REBUILDS,
    ShardIngestError,
    parse_shard,
    run_shards,
)

#: environment variable consulted when ``jobs`` is unset (shared with the
#: batch runner's process pool and the serving worker pool).
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: "int | None" = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_JOBS`` > 1.

    ``0`` (from either source) means "one per CPU".  The library default
    is deliberately serial — parallelism is opt-in via argument or
    environment, never a surprise.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"{JOBS_ENV_VAR}={env!r} is not an integer") from None
    jobs = int(jobs)
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _policy_hash(policy: IngestPolicy) -> str:
    blob = json.dumps(policy.describe(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def _cache_dir(manifest: "str | os.PathLike[str]") -> str:
    return f"{manifest}.cache"


def _cache_path(
    manifest: "str | os.PathLike[str]", spec: ShardSpec, policy_hash: str
) -> str:
    # Content-addressed: same chunk bytes + same start line + same policy
    # parse to the same partial result, whatever index the shard now has.
    name = f"{spec.checksum}-{spec.start_line}-{policy_hash}.npz"
    return os.path.join(_cache_dir(manifest), name)


#: result-dict fields that ride in the cache's JSON blob (arrays go in
#: the npz proper; int-keyed dicts survive a JSON round trip via items).
_CACHE_META_FIELDS = (
    "lines_total", "blank_lines", "comment_lines", "events_parsed",
    "format_version", "flagged", "repaired", "quarantined_counts",
)


def _store_cached_result(path: str, result: dict) -> None:
    meta = {field: result[field] for field in _CACHE_META_FIELDS}
    meta["quarantined"] = sorted(result["quarantined"].items())
    meta["raw"] = sorted(result["raw"].items())
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            ln=result["ln"], u=result["u"], v=result["v"], t=result["t"],
            meta=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        )
    os.replace(tmp, path)


def _load_cached_result(path: str, index: int) -> "dict | None":
    try:
        with np.load(path) as bundle:
            meta = json.loads(bytes(bundle["meta"].tobytes()).decode("utf-8"))
            result = {
                "ln": bundle["ln"], "u": bundle["u"],
                "v": bundle["v"], "t": bundle["t"],
            }
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        return None  # unreadable cache entry: just re-parse the shard
    result.update({field: meta[field] for field in _CACHE_META_FIELDS})
    result["quarantined"] = {int(k): v for k, v in meta["quarantined"]}
    result["raw"] = {int(k): v for k, v in meta["raw"]}
    result["pending"] = None
    result["deferred"] = None
    result["index"] = index
    result["seconds"] = 0.0
    result["cached"] = True
    return result


def scan_shards(
    paths: "list",
    policy: "IngestPolicy | None" = None,
    quarantine_path: "str | os.PathLike[str] | None" = None,
    jobs: "int | None" = None,
    shard_bytes: "int | None" = None,
    target_shards: "int | None" = None,
    manifest: "str | os.PathLike[str] | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, IngestReport]":
    """Sharded analogue of :func:`repro.ingest.scan_trace`.

    ``paths`` is one or more trace files in stream order.  ``manifest``
    names a ``repro-shards v1`` JSON file: when it exists, shards whose
    bytes still hash to their manifest checksum reuse the cached parse
    from ``<manifest>.cache/``; either way the manifest (and cache) are
    rewritten to describe this run.  Output is byte-identical to the
    serial pipeline for any ``jobs``/``shard_bytes``/cache state.
    """
    if not paths:
        raise ValueError("scan_shards needs at least one trace path")
    paths = [str(p) for p in paths]
    policy = policy or IngestPolicy.default()
    jobs = resolve_jobs(jobs)
    policy_hash = _policy_hash(policy)
    with telemetry.tracer.span(
        "ingest.shard.scan", paths=len(paths), jobs=jobs
    ) as scan_span:
        plan_started = time.perf_counter()
        with telemetry.tracer.span("ingest.shard.plan"):
            resolved_bytes = resolve_shard_bytes(
                paths, shard_bytes=shard_bytes,
                target_shards=target_shards, jobs=jobs,
            )
            if manifest is not None and os.path.exists(manifest):
                previous = read_manifest(manifest)
                # Reuse the previous split size unless overridden, so an
                # unchanged file re-plans to the same chunks and every
                # cache key lines up.
                if shard_bytes is None and target_shards is None:
                    resolved_bytes = int(
                        previous.get("shard_bytes", resolved_bytes)
                    )
            specs = plan_shards(paths, shard_bytes=resolved_bytes)
        plan_seconds = time.perf_counter() - plan_started

        results: "list[dict | None]" = [None] * len(specs)
        cache_hits = 0
        if manifest is not None and os.path.exists(manifest):
            for spec in specs:
                cached = _load_cached_result(
                    _cache_path(manifest, spec, policy_hash), spec.index
                )
                if cached is not None:
                    results[spec.index] = cached
                    cache_hits += 1
        fresh_specs = [spec for spec in specs if results[spec.index] is None]
        stats = {"retries": 0, "pool_rebuilds": 0, "degraded": False}
        with telemetry.tracer.span(
            "ingest.shard.parse",
            shards=len(specs), cached=cache_hits, jobs=jobs,
        ):
            if fresh_specs:
                fresh_results, stats = run_shards(fresh_specs, policy, jobs)
                for spec, result in zip(fresh_specs, fresh_results):
                    results[spec.index] = result

        report = IngestReport(
            path=paths[0],
            policy=policy.describe(),
            gzip=any(spec.gzip for spec in specs),
            sources=list(paths),
        )
        with telemetry.tracer.span("ingest.shard.merge", shards=len(specs)):
            us, vs, ts = merge_shards(
                specs, results, paths, policy, report,
                quarantine_path=quarantine_path,
            )
        report.shard_timings = [
            {
                "shard": spec.index,
                "path": spec.path,
                "byte_start": spec.byte_start,
                "byte_end": spec.byte_end,
                "events": int(result["events_parsed"]),
                "seconds": float(result["seconds"]),
                "cached": bool(result["cached"]),
            }
            for spec, result in zip(specs, results)
        ]
        report.shard_timings.append({
            "shard": "plan", "path": "", "byte_start": 0, "byte_end": 0,
            "events": 0, "seconds": plan_seconds, "cached": False,
        })
        if manifest is not None:
            _persist_manifest(
                manifest, specs, resolved_bytes, report, results, policy_hash
            )
        scan_span.set(
            events_accepted=report.events_accepted,
            shards=len(specs),
            cache_hits=cache_hits,
            retries=stats["retries"],
            pool_rebuilds=stats["pool_rebuilds"],
            degraded=stats["degraded"],
        )
        _record_shard_metrics(len(specs), cache_hits, stats)
        _record_ingest_metrics(report)
    return us, vs, ts, report


def _persist_manifest(
    manifest: "str | os.PathLike[str]",
    specs: "list[ShardSpec]",
    resolved_bytes: int,
    report: IngestReport,
    results: "list[dict]",
    policy_hash: str,
) -> None:
    rejects = {}
    if report.quarantine_paths:
        if len(report.sources) == 1:
            rejects[report.sources[0]] = report.quarantine_paths[0]
        else:
            # Multi-source sidecars follow the <source>.rejects convention.
            for source in report.sources:
                sidecar = f"{source}.rejects"
                if sidecar in report.quarantine_paths:
                    rejects[source] = sidecar
    write_manifest(manifest, specs, resolved_bytes, rejects=rejects or None)
    cache_dir = _cache_dir(manifest)
    os.makedirs(cache_dir, exist_ok=True)
    for spec, result in zip(specs, results):
        if result["cached"] or result["pending"] or result["deferred"]:
            continue
        _store_cached_result(
            _cache_path(manifest, spec, policy_hash), result
        )


def _record_shard_metrics(shards: int, cache_hits: int, stats: dict) -> None:
    registry = telemetry.metrics
    if not registry.enabled:
        return
    registry.counter("ingest.shard.shards_total").inc(shards)
    registry.counter("ingest.shard.cache_hits").inc(cache_hits)
    registry.counter("ingest.shard.retries").inc(stats["retries"])
    registry.counter("ingest.shard.pool_rebuilds").inc(stats["pool_rebuilds"])


def load_shards(
    paths: "list",
    policy: "IngestPolicy | None" = None,
    quarantine_path: "str | os.PathLike[str] | None" = None,
    jobs: "int | None" = None,
    shard_bytes: "int | None" = None,
    target_shards: "int | None" = None,
    manifest: "str | os.PathLike[str] | None" = None,
) -> TemporalGraph:
    """Sharded analogue of :func:`repro.ingest.load_trace` (multi-file)."""
    us, vs, ts, report = scan_shards(
        paths, policy=policy, quarantine_path=quarantine_path, jobs=jobs,
        shard_bytes=shard_bytes, target_shards=target_shards,
        manifest=manifest,
    )
    trace = TemporalGraph.from_columns(us, vs, ts, validated=True)
    trace.ingest_report = report
    return trace


__all__ = [
    "DEFAULT_SHARD_BYTES",
    "JOBS_ENV_VAR",
    "MANIFEST_FORMAT",
    "MAX_ATTEMPTS",
    "MAX_POOL_REBUILDS",
    "MIN_SHARD_BYTES",
    "ShardIngestError",
    "ShardSpec",
    "load_shards",
    "manifest_sources",
    "parse_shard",
    "plan_shards",
    "read_manifest",
    "read_manifest_rejects",
    "resolve_jobs",
    "resolve_shard_bytes",
    "run_shards",
    "scan_shards",
    "verify_shard",
    "write_manifest",
]
