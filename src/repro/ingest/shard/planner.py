"""Shard planner: line-aligned byte ranges and the ``repro-shards v1`` manifest.

Splitting rules (documented in docs/reproduction_guide.md):

- **Plain-text files** split into byte-range chunks of roughly
  ``shard_bytes`` each.  A provisional boundary at ``k * shard_bytes`` is
  advanced to just after the next ``b"\\n"``, so every chunk starts at a
  line start and no line straddles two chunks.  A ``\\r\\n`` terminator can
  never straddle a boundary (the boundary follows the ``\\n``), and a
  chunk after the first is decoded as plain UTF-8 (no BOM stripping — a
  BOM is only meaningful at file start), so each chunk decodes to exactly
  the lines the serial reader would have produced for that range.
- **Gzip files** (sniffed by magic bytes, like the serial loader) become
  one shard each: DEFLATE streams have no random access, so gzip inputs
  parallelise at *file* granularity only.  Multi-member gzip files are
  still one shard — ``gzip.open`` reads all members sequentially.

While finding boundaries the planner also makes one sequential pass over
each plain file, hashing every chunk (truncated sha256 — the manifest /
result-cache key) and counting its line breaks.  The line counts give
every chunk its global ``start_line``, which the workers need because
2-column legacy lines take their *line number* as the synthetic
timestamp — global line numbers must therefore be known before any chunk
is parsed.  This scan is a byte-level pass (``bytes.count``), far cheaper
than parsing, and is the serial fraction of the sharded ingest.

Line counting replicates the universal-newline semantics of the serial
text reader: ``\\n``, ``\\r`` and ``\\r\\n`` each end one line, so breaks
= ``count(\\n) + count(\\r) - count(\\r\\n)`` (with a carry for a ``\\r\\n``
split across two read buffers), plus one trailing line when the chunk
does not end in a break character.
"""

from __future__ import annotations

import json
import hashlib
import os
from dataclasses import dataclass

from repro.ingest.errors import RejectRecord
from repro.ingest.loader import is_gzip

#: manifest format tag; bump on incompatible layout changes.
MANIFEST_FORMAT = "repro-shards v1"

#: default split size for plain-text files when neither ``shard_bytes``
#: nor a shard-count target is given.
DEFAULT_SHARD_BYTES = 32 * 1024 * 1024

#: smallest shard the planner will deliberately create; below this the
#: per-shard overhead (process dispatch, chunk decode) dwarfs the work.
MIN_SHARD_BYTES = 1 << 16

#: read-buffer size for the planner's hashing/counting pass.
_SCAN_BUFFER = 1 << 20


@dataclass(frozen=True)
class ShardSpec:
    """One planned unit of parallel ingest work."""

    #: global shard index, in stream (source, offset) order.
    index: int
    path: str
    #: position of ``path`` in the source list (stream order of files).
    source_idx: int
    byte_start: int
    byte_end: int
    #: 1-based line number of the chunk's first line within its file.
    start_line: int
    #: lines in the chunk; -1 for gzip shards (not pre-scanned — counting
    #: would mean decompressing the file twice).
    line_count: int
    #: truncated sha256 over the raw (possibly compressed) chunk bytes.
    checksum: str
    gzip: bool

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "path": self.path,
            "source_idx": self.source_idx,
            "byte_start": self.byte_start,
            "byte_end": self.byte_end,
            "start_line": self.start_line,
            "line_count": self.line_count,
            "checksum": self.checksum,
            "gzip": self.gzip,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardSpec":
        return cls(**{k: payload[k] for k in (
            "index", "path", "source_idx", "byte_start", "byte_end",
            "start_line", "line_count", "checksum", "gzip",
        )})


def _scan_chunk(fh, start: int, end: int) -> "tuple[str, int]":
    """Hash + line-count the byte range ``[start, end)`` of ``fh``."""
    fh.seek(start)
    digest = hashlib.sha256()
    breaks = 0
    prev_cr = False
    last = b""
    remaining = end - start
    while remaining:
        buf = fh.read(min(_SCAN_BUFFER, remaining))
        if not buf:
            break
        remaining -= len(buf)
        digest.update(buf)
        breaks += buf.count(b"\n") + buf.count(b"\r") - buf.count(b"\r\n")
        if prev_cr and buf[:1] == b"\n":
            breaks -= 1  # one \r\n split across the buffer seam
        prev_cr = buf.endswith(b"\r")
        last = buf[-1:]
    lines = breaks
    if end > start and last not in (b"\n", b"\r"):
        lines += 1  # trailing line without a terminator
    return digest.hexdigest()[:16], lines


def _hash_file(path: "str | os.PathLike[str]") -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            buf = fh.read(_SCAN_BUFFER)
            if not buf:
                break
            digest.update(buf)
    return digest.hexdigest()[:16]


def _plain_boundaries(
    path: "str | os.PathLike[str]", size: int, shard_bytes: int
) -> "list[int]":
    """Byte offsets splitting ``path`` into line-aligned chunks.

    Returns ``[0, b1, ..., size]``; every interior boundary sits just
    after a ``b"\\n"``.  A file with no newline within ``shard_bytes`` of
    a provisional boundary simply gets a longer chunk.
    """
    bounds = [0]
    with open(path, "rb") as fh:
        while True:
            provisional = bounds[-1] + shard_bytes
            if provisional >= size:
                break
            fh.seek(provisional)
            pos = provisional
            while True:
                buf = fh.read(_SCAN_BUFFER)
                if not buf:
                    pos = size
                    break
                nl = buf.find(b"\n")
                if nl >= 0:
                    pos += nl + 1
                    break
                pos += len(buf)
            if pos >= size:
                break
            bounds.append(pos)
    bounds.append(size)
    return bounds


def resolve_shard_bytes(
    paths: "list[str]",
    shard_bytes: "int | None" = None,
    target_shards: "int | None" = None,
    jobs: "int | None" = None,
) -> int:
    """Pick the plain-file split size.

    Explicit ``shard_bytes`` wins; otherwise aim for ``target_shards``
    chunks over the total plain-file bytes (default ``2 * jobs`` so the
    pool stays busy even when chunk parse times vary), clamped to
    [:data:`MIN_SHARD_BYTES`, :data:`DEFAULT_SHARD_BYTES`].
    """
    if shard_bytes is not None:
        if shard_bytes < 1:
            raise ValueError(f"shard_bytes must be >= 1, got {shard_bytes}")
        return int(shard_bytes)
    plain_total = sum(
        os.path.getsize(p) for p in paths if not is_gzip(p)
    )
    target = target_shards if target_shards else 2 * max(1, jobs or 1)
    derived = -(-plain_total // max(1, target))  # ceil division
    return int(min(DEFAULT_SHARD_BYTES, max(MIN_SHARD_BYTES, derived)))


def plan_shards(
    paths: "list[str]",
    shard_bytes: "int | None" = None,
    target_shards: "int | None" = None,
    jobs: "int | None" = None,
) -> "list[ShardSpec]":
    """Plan the shard set for ``paths`` (stream order = list order)."""
    if not paths:
        raise ValueError("plan_shards needs at least one trace path")
    resolved = resolve_shard_bytes(
        paths, shard_bytes=shard_bytes, target_shards=target_shards, jobs=jobs
    )
    specs: list[ShardSpec] = []
    for source_idx, path in enumerate(paths):
        path = str(path)
        size = os.path.getsize(path)
        if is_gzip(path):
            specs.append(ShardSpec(
                index=len(specs), path=path, source_idx=source_idx,
                byte_start=0, byte_end=size, start_line=1, line_count=-1,
                checksum=_hash_file(path), gzip=True,
            ))
            continue
        bounds = _plain_boundaries(path, size, resolved)
        start_line = 1
        with open(path, "rb") as fh:
            for lo, hi in zip(bounds, bounds[1:]):
                checksum, lines = _scan_chunk(fh, lo, hi)
                specs.append(ShardSpec(
                    index=len(specs), path=path, source_idx=source_idx,
                    byte_start=lo, byte_end=hi, start_line=start_line,
                    line_count=lines, checksum=checksum, gzip=False,
                ))
                start_line += lines
    return specs


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------
def write_manifest(
    path: "str | os.PathLike[str]",
    specs: "list[ShardSpec]",
    shard_bytes: int,
    rejects: "dict[str, str] | None" = None,
) -> None:
    """Write the ``repro-shards v1`` JSON manifest, atomically.

    ``rejects`` maps source path -> sidecar path for sources that
    quarantined lines in the run the manifest describes; it is what lets
    :func:`read_manifest_rejects` gather the full reject set back.
    """
    sources: list[dict] = []
    seen: dict[str, dict] = {}
    for spec in specs:
        if spec.path not in seen:
            entry = {
                "path": spec.path,
                "gzip": spec.gzip,
                "size": os.path.getsize(spec.path),
            }
            if rejects and spec.path in rejects:
                entry["rejects"] = rejects[spec.path]
            seen[spec.path] = entry
            sources.append(entry)
    payload = {
        "format": MANIFEST_FORMAT,
        "shard_bytes": int(shard_bytes),
        "sources": sources,
        "shards": [spec.to_payload() for spec in specs],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


def read_manifest(path: "str | os.PathLike[str]") -> dict:
    """Read + structurally validate a manifest; returns the payload with
    ``shards`` replaced by :class:`ShardSpec` instances."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path}: not a {MANIFEST_FORMAT!r} manifest "
            f"(format={payload.get('format') if isinstance(payload, dict) else None!r})"
        )
    try:
        payload["shards"] = [
            ShardSpec.from_payload(p) for p in payload["shards"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path}: malformed shard entry: {exc}") from None
    return payload


def manifest_sources(path: "str | os.PathLike[str]") -> "list[str]":
    """Source trace paths named by a manifest, in stream order."""
    return [entry["path"] for entry in read_manifest(path)["sources"]]


def read_manifest_rejects(
    path: "str | os.PathLike[str]",
) -> "list[RejectRecord]":
    """Gather every reject record referenced by a shard manifest.

    Records come back in stream order (source order, then line number)
    with :attr:`RejectRecord.path` set to the source trace, so a
    multi-file reject set round-trips losslessly even though per-source
    line numbers overlap.  Sidecars the manifest names but that do not
    exist (e.g. a re-run under a non-quarantining policy) are skipped.
    """
    from repro.ingest.loader import read_rejects  # circular at module load

    records: list[RejectRecord] = []
    for entry in read_manifest(path)["sources"]:
        sidecar = entry.get("rejects")
        if not sidecar or not os.path.exists(sidecar):
            continue
        for record in read_rejects(sidecar):
            if isinstance(record, RejectRecord) and not record.path:
                record = RejectRecord(
                    record.lineno, record.error_class, record.line,
                    entry["path"],
                )
            records.append(record)
    return records


def verify_shard(spec: ShardSpec) -> bool:
    """True when the shard's bytes still hash to the planned checksum."""
    try:
        size = os.path.getsize(spec.path)
        if spec.byte_end > size:
            return False
        if spec.gzip:
            return spec.byte_end == size and _hash_file(spec.path) == spec.checksum
        with open(spec.path, "rb") as fh:
            checksum, _lines = _scan_chunk(fh, spec.byte_start, spec.byte_end)
        return checksum == spec.checksum
    except OSError:
        return False


__all__ = [
    "MANIFEST_FORMAT",
    "DEFAULT_SHARD_BYTES",
    "MIN_SHARD_BYTES",
    "ShardSpec",
    "plan_shards",
    "resolve_shard_bytes",
    "write_manifest",
    "read_manifest",
    "manifest_sources",
    "read_manifest_rejects",
    "verify_shard",
]
