"""Per-error-class repair policies for trace ingestion.

Each error class (see :mod:`repro.ingest.errors`) is handled by one of
three *actions*:

``strict``
    Raise :class:`~repro.ingest.errors.TraceFormatError` with file:line
    context and the offending line.
``repair``
    Apply the class's deterministic fix and continue: drop the record
    (``parse_error`` / ``bad_node_id`` / ``nonfinite_time`` / ``self_loop``
    / ``duplicate_edge``), clamp the timestamp to ``0.0``
    (``negative_time``), or stable-sort the stream by time
    (``out_of_order``).
``quarantine``
    Divert the offending lines to a ``.rejects`` sidecar file (lossless —
    the raw lines are preserved) and continue without them.

The default mapping reproduces the legacy loader's observable behaviour —
malformed lines and self-loops raise, duplicates are dropped, unsorted
files are sorted — while making every one of those decisions counted and
reported.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.ingest.errors import ERROR_CLASSES

#: the three actions a policy can assign to an error class.
ACTIONS: tuple[str, ...] = ("strict", "repair", "quarantine")


@dataclass(frozen=True)
class IngestPolicy:
    """Action per error class.  Immutable; construct presets via the
    classmethods or override individual classes by keyword."""

    parse_error: str = "strict"
    bad_node_id: str = "strict"
    nonfinite_time: str = "strict"
    negative_time: str = "strict"
    self_loop: str = "strict"
    out_of_order: str = "repair"
    duplicate_edge: str = "repair"

    def __post_init__(self) -> None:
        for cls in ERROR_CLASSES:
            action = getattr(self, cls)
            if action not in ACTIONS:
                raise ValueError(
                    f"invalid action {action!r} for {cls!r}; choose from {ACTIONS}"
                )

    def action(self, error_class: str) -> str:
        if error_class not in ERROR_CLASSES:
            raise KeyError(error_class)
        return getattr(self, error_class)

    def describe(self) -> dict[str, str]:
        """Class -> action mapping (stored on the :class:`IngestReport`)."""
        return asdict(self)

    # -- presets --------------------------------------------------------
    @classmethod
    def default(cls) -> "IngestPolicy":
        """Legacy-compatible mapping (see module docstring)."""
        return cls()

    @classmethod
    def strict(cls) -> "IngestPolicy":
        return cls(**{c: "strict" for c in ERROR_CLASSES})

    @classmethod
    def repair(cls) -> "IngestPolicy":
        return cls(**{c: "repair" for c in ERROR_CLASSES})

    @classmethod
    def quarantine(cls) -> "IngestPolicy":
        return cls(**{c: "quarantine" for c in ERROR_CLASSES})

    @classmethod
    def from_string(cls, name: str) -> "IngestPolicy":
        """Resolve a CLI-style policy word (``default``/``strict``/
        ``repair``/``quarantine``)."""
        presets = {
            "default": cls.default,
            "strict": cls.strict,
            "repair": cls.repair,
            "quarantine": cls.quarantine,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown ingest policy {name!r}; choose from {sorted(presets)}"
            ) from None
