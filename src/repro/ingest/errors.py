"""Error taxonomy for trace ingestion.

Crawled OSN traces arrive dirty — Section 3 of the paper works around
snowball-sampling bias, missing timestamps, and burst-y duplicate events,
and Junuthula et al. (PAPERS.md) show that how such events are counted can
flip evaluation conclusions.  Every record the loader rejects or repairs is
therefore classified into one of a fixed set of *error classes*, so the
decision is explicit, reported, and testable instead of a bare
``ValueError`` (or worse, silence).

The classes, in the order the pipeline checks them:

``parse_error``
    The line is not ``u v [t]``: wrong field count, or a token that is not
    numeric at all.
``bad_node_id``
    A node token that is numeric but not a valid id: non-integer (``3.5``),
    negative, or outside the int64 range.
``nonfinite_time``
    Timestamp parsed to ``nan`` / ``inf``.
``negative_time``
    Finite timestamp below zero (times are days since trace start).
``self_loop``
    ``u == v``.
``out_of_order``
    Event timestamp smaller than an earlier event's (crawl artefact; the
    paper's snapshot sequencing assumes a time-ordered stream).
``duplicate_edge``
    A ``(u, v)`` pair already seen earlier in the (time-ordered) stream —
    the traces record first creation only.
"""

from __future__ import annotations

from dataclasses import dataclass

#: every error class, in pipeline check order.
ERROR_CLASSES: tuple[str, ...] = (
    "parse_error",
    "bad_node_id",
    "nonfinite_time",
    "negative_time",
    "self_loop",
    "out_of_order",
    "duplicate_edge",
)


class TraceFormatError(ValueError):
    """A trace record violated the format under a ``strict`` policy.

    Carries the machine-readable context (error class, path, line number,
    offending line) that the bare ``ValueError`` of the old loader lost.
    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    (notably the CLI's exit-2 handler) keep working.
    """

    def __init__(
        self,
        error_class: str,
        path: str,
        lineno: "int | None",
        line: "str | None",
        detail: str,
    ) -> None:
        self.error_class = error_class
        self.path = str(path)
        self.lineno = lineno
        self.line = line
        self.detail = detail
        where = self.path if lineno is None else f"{self.path}:{lineno}"
        snippet = "" if line is None else f", got {line!r}"
        super().__init__(f"{where}: [{error_class}] {detail}{snippet}")


@dataclass(frozen=True)
class RejectRecord:
    """One quarantined line, as stored in a ``.rejects`` sidecar file.

    ``path`` is the source trace the line came from — empty for sidecars
    read standalone, populated when records are gathered across a shard
    manifest (where linenos alone no longer identify a line).
    """

    lineno: int
    error_class: str
    line: str
    path: str = ""
