"""Streaming, policy-driven trace loader.

Replaces the trusting legacy path (``sorted(list-of-tuples)`` then
per-event ``add_edge``) with a pipeline built for crawled inputs:

1. **Chunked reading.**  The file — plain text or gzip (sniffed by magic
   bytes, not extension), UTF-8 with or without BOM — is consumed line by
   line into fixed-size *blocks* (``BLOCK_LINES`` data lines).  Each block
   is parsed directly into NumPy int64/float64 columns: one C-level
   ``np.array(tokens, dtype=...)`` conversion per block on the fast path,
   with a per-line fallback only for blocks that contain malformed rows.
   Peak memory is the final columns plus one block of transients — never a
   full-file list of Python tuples.
2. **Vectorised validation.**  The assembled ``(u, v, t, lineno)`` columns
   run through the error-taxonomy checks in a fixed order (bad node ids,
   non-finite times, negative times, self-loops, out-of-order events,
   duplicate edges), each applied per the
   :class:`~repro.ingest.policy.IngestPolicy` — raise with file:line
   context, repair deterministically, or quarantine the raw lines to a
   ``.rejects`` sidecar.  Time ordering is one stable ``argsort`` over the
   columns, not a Python ``sorted()``.
3. **Columnar construction.**  The accepted columns become a
   ``TemporalGraph`` via :meth:`TemporalGraph.from_columns`, skipping the
   per-event validation already done here, with the
   :class:`~repro.ingest.report.IngestReport` attached as
   ``trace.ingest_report``.
"""

from __future__ import annotations

import gzip
import hashlib
import os
from collections.abc import Iterator

import numpy as np

from repro import telemetry
from repro.graph.dyngraph import TemporalGraph
from repro.ingest.errors import RejectRecord, TraceFormatError
from repro.ingest.policy import IngestPolicy
from repro.ingest.report import IngestReport

#: data lines per parse block; bounds transient memory (the split-token
#: lists of one block are the largest Python-object allocation on the hot
#: path) while still amortising the per-block NumPy conversion overhead.
BLOCK_LINES = 16384

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: header line prefix written by ``write_trace`` (``# repro-trace v2``).
FORMAT_HEADER_PREFIX = "# repro-trace v"


def open_trace_text(path: "str | os.PathLike[str]"):
    """Open a trace for reading: gzip-sniffed, UTF-8, BOM-tolerant.

    Compression is detected from the two gzip magic bytes rather than the
    file name, so ``trace.txt`` containing gzip data still loads.
    Undecodable bytes are replaced (the replacement character then fails
    numeric parsing, surfacing as a located ``parse_error`` instead of a
    mid-file ``UnicodeDecodeError``).
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(path, "rt", encoding="utf-8-sig", errors="replace")
    return open(path, encoding="utf-8-sig", errors="replace")


def is_gzip(path: "str | os.PathLike[str]") -> bool:
    with open(path, "rb") as probe:
        return probe.read(2) == b"\x1f\x8b"


# ---------------------------------------------------------------------------
# Line-level classification (shared with repro.graph.io.iter_trace_lines)
# ---------------------------------------------------------------------------
def classify_event_line(parts: "list[str]") -> "tuple[str, str] | None":
    """Classify one split data line; ``None`` when it is well-formed.

    Returns ``(error_class, detail)`` for the parse-stage classes only —
    the structural classes (self-loops, duplicates, ordering, negative or
    non-finite times) are vectorised checks over the whole stream.
    """
    if len(parts) not in (2, 3):
        return "parse_error", "expected 'u v [t]'"
    for token in parts[:2]:
        try:
            value = int(token)
        except ValueError:
            try:
                float(token)
            except ValueError:
                return "parse_error", f"non-numeric field {token!r}"
            return "bad_node_id", f"node id {token!r} is not an integer"
        if not _INT64_MIN <= value <= _INT64_MAX:
            return "bad_node_id", f"node id {token!r} outside int64 range"
    if len(parts) == 3:
        try:
            float(parts[2])
        except ValueError:
            return "parse_error", f"non-numeric timestamp {parts[2]!r}"
    return None


def _fetch_lines(
    path: "str | os.PathLike[str]", wanted: "set[int]"
) -> "dict[int, str]":
    """Re-read ``path`` collecting the raw text of the wanted line numbers.

    Only runs on the error/quarantine path, so the hot path never buffers
    raw lines it will not need.
    """
    found: dict[int, str] = {}
    with open_trace_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if lineno in wanted:
                found[lineno] = line.rstrip("\r\n")
                if len(found) == len(wanted):
                    break
    return found


def _strict_error(
    error_class: str,
    path: "str | os.PathLike[str]",
    lineno: int,
    detail: str,
    line: "str | None" = None,
) -> TraceFormatError:
    if line is None:
        line = _fetch_lines(path, {lineno}).get(lineno)
    return TraceFormatError(error_class, str(path), lineno, line, detail)


class _DeferredStrict(Exception):
    """Internal: a strict-class offender found while ``defer_strict`` is on.

    Raised by :meth:`_Ingest.flag_mask` inside shard workers instead of a
    :class:`TraceFormatError`, so the worker can ship the offender back to
    the driver, which re-raises the *globally first* offender — the same
    one the serial pipeline would have raised.
    """

    def __init__(self, error_class: str, lineno: int, detail: str) -> None:
        super().__init__(f"[{error_class}] line {lineno}: {detail}")
        self.error_class = error_class
        self.lineno = lineno
        self.detail = detail


# ---------------------------------------------------------------------------
# Block parsing
# ---------------------------------------------------------------------------
class _ColumnAccumulator:
    """Collects per-block column chunks; concatenated once at the end."""

    def __init__(self) -> None:
        self.lineno: list[np.ndarray] = []
        self.u: list[np.ndarray] = []
        self.v: list[np.ndarray] = []
        self.t: list[np.ndarray] = []

    def append(
        self, ln: np.ndarray, u: np.ndarray, v: np.ndarray, t: np.ndarray
    ) -> None:
        if len(ln):
            self.lineno.append(ln)
            self.u.append(u)
            self.v.append(v)
            self.t.append(t)

    def concatenate(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        if not self.lineno:
            empty_i = np.zeros(0, dtype=np.int64)
            return empty_i, empty_i.copy(), empty_i.copy(), np.zeros(0, dtype=np.float64)
        return (
            np.concatenate(self.lineno),
            np.concatenate(self.u),
            np.concatenate(self.v),
            np.concatenate(self.t),
        )


class _Ingest:
    """State of one load: policy application, counters, quarantine set.

    ``defer_strict`` turns strict-mode raising into *recording*: parse-stage
    offenders accumulate in :attr:`pending` (minimum line number wins) and
    vectorised-stage offenders surface as :class:`_DeferredStrict`.  The
    shard workers run in this mode so the merge stage — not an arbitrary
    worker — decides which offender the whole load reports, reproducing the
    serial pipeline's first-offender choice exactly.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        policy: IngestPolicy,
        report: IngestReport,
        defer_strict: bool = False,
    ) -> None:
        self.path = path
        self.policy = policy
        self.report = report
        self.defer_strict = defer_strict
        #: lineno -> error class, for the sidecar re-read pass.
        self.quarantined: dict[int, str] = {}
        #: earliest parse-stage strict offender: (lineno, class, line, detail).
        self.pending: "tuple[int, str, str, str] | None" = None

    # -- counting helpers ----------------------------------------------
    def _bump(self, bucket: "dict[str, int]", error_class: str, n: int = 1) -> None:
        bucket[error_class] = bucket.get(error_class, 0) + n

    # -- strict-mode hooks ----------------------------------------------
    def strict_error(
        self, error_class: str, key: int, detail: str, line: "str | None" = None
    ) -> TraceFormatError:
        """Build the strict-mode error for offender ``key`` (a line number
        here; the shard merge subclass decodes composite shard keys)."""
        return _strict_error(error_class, self.path, key, detail, line)

    def raise_pending(self) -> None:
        """Raise the recorded parse-stage offender (block-deferred strict).

        Called after each parsed block: all of a block's offenders are
        classified first, then the one with the smallest line number
        raises — deterministic regardless of how lines group into parse
        blocks, which is what makes the sharded path's strict errors
        byte-identical to the serial path's.
        """
        if self.pending is not None and not self.defer_strict:
            lineno, error_class, line, detail = self.pending
            raise self.strict_error(error_class, lineno, detail, line)

    def _quarantine_keys(self, error_class: str, keys: np.ndarray) -> None:
        for lineno in keys.tolist():
            self.quarantined[lineno] = error_class

    def flag_line(
        self, error_class: str, lineno: int, line: str, detail: str
    ) -> bool:
        """Apply the policy to one parse-stage offender.

        Returns True when the line should be kept (never, currently: both
        repair and quarantine drop parse-stage offenders).  Strict-class
        offenders are recorded, not raised — :meth:`raise_pending` fires
        at the end of the block.
        """
        self._bump(self.report.flagged, error_class)
        action = self.policy.action(error_class)
        if action == "strict":
            if self.pending is None or lineno < self.pending[0]:
                self.pending = (lineno, error_class, line, detail)
            return False
        if action == "repair":
            self._bump(self.report.repaired, error_class)
        else:
            self._bump(self.report.quarantined, error_class)
            self.quarantined[lineno] = error_class
        return False

    def flag_mask(
        self,
        error_class: str,
        mask: np.ndarray,
        linenos: np.ndarray,
        detail_of,
    ) -> str:
        """Apply the policy to a vectorised stage's offender mask.

        Returns the action taken (caller applies the class's repair);
        counts are recorded here.  ``detail_of(i)`` builds the strict-mode
        message for offender stream-index ``i``.
        """
        n = int(mask.sum())
        if n == 0:
            return "none"
        self._bump(self.report.flagged, error_class, n)
        action = self.policy.action(error_class)
        if action == "strict":
            offenders = np.flatnonzero(mask)
            first = int(offenders[np.argmin(linenos[offenders])])
            key = int(linenos[first])
            detail = detail_of(first)
            if self.defer_strict:
                raise _DeferredStrict(error_class, key, detail)
            raise self.strict_error(error_class, key, detail)
        if action == "repair":
            self._bump(self.report.repaired, error_class, n)
        else:
            self._bump(self.report.quarantined, error_class, n)
            self._quarantine_keys(error_class, linenos[mask])
        return action


def _parse_slow(
    parts: "list[list[str]]",
    lines: "list[str]",
    linenos: "list[int]",
    rows: np.ndarray,
    timed: bool,
    ingest: _Ingest,
    out: _ColumnAccumulator,
) -> None:
    """Per-line fallback for a block subgroup that failed bulk conversion."""
    good_ln: list[int] = []
    good_u: list[int] = []
    good_v: list[int] = []
    good_t: list[float] = []
    for i in rows.tolist():
        p = parts[i]
        verdict = classify_event_line(p)
        if verdict is not None:
            error_class, detail = verdict
            ingest.flag_line(error_class, linenos[i], lines[i], detail)
            continue
        good_ln.append(linenos[i])
        good_u.append(int(p[0]))
        good_v.append(int(p[1]))
        good_t.append(float(p[2]) if timed else float(linenos[i]))
    out.append(
        np.asarray(good_ln, dtype=np.int64),
        np.asarray(good_u, dtype=np.int64),
        np.asarray(good_v, dtype=np.int64),
        np.asarray(good_t, dtype=np.float64),
    )


def _parse_block(
    lines: "list[str]",
    linenos: "list[int]",
    ingest: _Ingest,
    out: _ColumnAccumulator,
) -> None:
    """Parse one block of stripped data lines into column chunks.

    Fast path: a block whose every line is exactly ``u<SP>v<SP>t`` (one
    single space between fields — what ``write_trace`` and every crawler
    fixture emit) is tokenised with ONE ``str.join`` + ``str.split`` and
    three strided ``np.array`` conversions: no per-line ``split()`` lists,
    no Python-level transpose.  The per-line guard is exact — each line
    contributes exactly three tokens, so the ``[0::3]/[1::3]/[2::3]``
    strides cannot mis-align (a token-count-only check would: a 4-token
    line followed by a 2-token line still sums to 3N).  Any other
    whitespace shape, or a failed numeric conversion, falls through to
    the grouped path below (3-column timestamped, 2-column legacy with
    synthetic line-number timestamps; one bulk conversion per group,
    per-line classification only for groups that fail it).
    """
    if all(
        "\t" not in line and line.count(" ") == 2 and "  " not in line
        for line in lines
    ):
        tokens = " ".join(lines).split(" ")
        try:
            u = np.array(tokens[0::3], dtype=np.int64)
            v = np.array(tokens[1::3], dtype=np.int64)
            t = np.array(tokens[2::3], dtype=np.float64)
        except (ValueError, OverflowError):
            pass  # a dirty line hides in the block; classify it below
        else:
            out.append(np.asarray(linenos, dtype=np.int64), u, v, t)
            return
    parts = [line.split() for line in lines]
    # Homogeneous all-timestamped block (the overwhelmingly common shape):
    # transpose with one C-level zip and convert each column directly.
    if all(len(p) == 3 for p in parts):
        try:
            su, sv, st = zip(*parts)
            u = np.array(su, dtype=np.int64)
            v = np.array(sv, dtype=np.int64)
            t = np.array(st, dtype=np.float64)
        except (ValueError, OverflowError):
            pass
        else:
            out.append(np.asarray(linenos, dtype=np.int64), u, v, t)
            return
    counts = np.fromiter((len(p) for p in parts), dtype=np.int64, count=len(parts))
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for width, timed in ((3, True), (2, False)):
        rows = np.flatnonzero(counts == width)
        if not len(rows):
            continue
        try:
            u = np.array([parts[i][0] for i in rows], dtype=np.int64)
            v = np.array([parts[i][1] for i in rows], dtype=np.int64)
            if timed:
                t = np.array([parts[i][2] for i in rows], dtype=np.float64)
                ln = np.array([linenos[i] for i in rows], dtype=np.int64)
            else:
                ln = np.array([linenos[i] for i in rows], dtype=np.int64)
                t = ln.astype(np.float64)
        except (ValueError, OverflowError):
            sub = _ColumnAccumulator()
            _parse_slow(parts, lines, linenos, rows, timed, ingest, sub)
            if sub.lineno:
                chunks.append(sub.concatenate())
            continue
        chunks.append((ln, u, v, t))
    bad = np.flatnonzero((counts != 2) & (counts != 3))
    for i in bad.tolist():
        ingest.flag_line("parse_error", linenos[i], lines[i], "expected 'u v [t]'")
    if len(chunks) == 1:
        out.append(*chunks[0])
    elif chunks:
        # Mixed 2-/3-column block: restore file order before appending.
        ln, u, v, t = (np.concatenate(cols) for cols in zip(*chunks))
        order = np.argsort(ln, kind="stable")
        out.append(ln[order], u[order], v[order], t[order])


def _consume_lines(
    line_iter,
    ingest: _Ingest,
    out: _ColumnAccumulator,
    first_lineno: int = 1,
) -> None:
    """Feed raw lines through blocking + block parsing into ``out``.

    Shared by the serial reader (the whole file, ``first_lineno=1``) and
    the shard workers (one byte-range chunk, ``first_lineno`` = the
    chunk's global start line) — the parse path is literally the same
    code either way, which is what makes shard output byte-identical.

    Strict parse-stage offenders raise at the end of their block via
    :meth:`_Ingest.raise_pending` (block-internal minimum line number
    wins), so the choice of first offender does not depend on how lines
    happen to group into blocks or chunks.
    """
    report = ingest.report
    block_lines: list[str] = []
    block_nos: list[int] = []
    for lineno, raw in enumerate(line_iter, start=first_lineno):
        report.lines_total += 1
        line = raw.strip()
        if not line:
            report.blank_lines += 1
            continue
        if line.startswith("#"):
            report.comment_lines += 1
            if report.format_version is None and line.startswith(
                FORMAT_HEADER_PREFIX
            ):
                version = line[len(FORMAT_HEADER_PREFIX) :].strip()
                if version.isdigit():
                    report.format_version = int(version)
            continue
        block_lines.append(line)
        block_nos.append(lineno)
        if len(block_lines) >= BLOCK_LINES:
            report.events_parsed += len(block_lines)
            _parse_block(block_lines, block_nos, ingest, out)
            ingest.raise_pending()
            block_lines, block_nos = [], []
    if block_lines:
        report.events_parsed += len(block_lines)
        _parse_block(block_lines, block_nos, ingest, out)
        ingest.raise_pending()


def _read_columns(
    path: "str | os.PathLike[str]", ingest: _Ingest
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Stream the file into ``(lineno, u, v, t)`` columns, block by block."""
    out = _ColumnAccumulator()
    with open_trace_text(path) as fh:
        _consume_lines(fh, ingest, out)
    return out.concatenate()


# ---------------------------------------------------------------------------
# Vectorised validation pipeline
# ---------------------------------------------------------------------------
def _drop(
    keep: np.ndarray, *columns: np.ndarray
) -> "tuple[np.ndarray, ...]":
    return tuple(col[keep] for col in columns)


def _validate_local(
    ln: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    ingest: _Ingest,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Checks 1–4: the *row-local* half of the taxonomy.

    Each of these classes (bad node ids, non-finite times, negative
    times, self-loops) judges a row by its own values only, so shard
    workers can run this half independently per chunk and produce
    exactly the rows the serial pipeline would have kept — the
    stream-global half (:func:`_validate_stream`) then runs once over
    the merged columns.
    """
    # 1. bad_node_id — negative ids (non-integer ids never parse to here).
    mask = (u < 0) | (v < 0)
    if ingest.flag_mask(
        "bad_node_id",
        mask,
        ln,
        lambda i: f"negative node id in ({int(u[i])}, {int(v[i])})",
    ) in ("repair", "quarantine"):
        ln, u, v, t = _drop(~mask, ln, u, v, t)

    # 2. nonfinite_time — nan/inf timestamps cannot be ordered or clamped.
    mask = ~np.isfinite(t)
    if ingest.flag_mask(
        "nonfinite_time", mask, ln, lambda i: f"non-finite timestamp {t[i]!r}"
    ) in ("repair", "quarantine"):
        ln, u, v, t = _drop(~mask, ln, u, v, t)

    # 3. negative_time — repair clamps to 0.0 (the trace-start origin);
    #    quarantine drops the lines like the other classes.
    mask = t < 0
    action = ingest.flag_mask(
        "negative_time", mask, ln, lambda i: f"negative timestamp {t[i]!r}"
    )
    if action == "repair":
        t = t.copy()
        t[mask] = 0.0
    elif action == "quarantine":
        ln, u, v, t = _drop(~mask, ln, u, v, t)

    # 4. self_loop.
    mask = u == v
    if ingest.flag_mask(
        "self_loop", mask, ln, lambda i: f"self-loop ({int(u[i])}, {int(u[i])})"
    ) in ("repair", "quarantine"):
        ln, u, v, t = _drop(~mask, ln, u, v, t)

    return ln, u, v, t


def _validate_stream(
    ln: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    ingest: _Ingest,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Checks 5–6: the *stream-global* half of the taxonomy.

    Ordering and duplicate detection depend on every preceding event, so
    the sharded path re-runs exactly this function over the concatenated
    worker columns — same code, same masks, same repairs as serial.
    Returns the accepted, canonical (``u < v``), time-sorted columns.
    """
    # 5. out_of_order — an event earlier than some preceding event.  Repair
    #    is one stable argsort over the time column (ties keep file order);
    #    quarantine drops the offenders, after which the remainder is
    #    sorted by construction (every survivor >= all earlier events).
    if len(t):
        running_max = np.concatenate(([-np.inf], np.maximum.accumulate(t)[:-1]))
        mask = t < running_max
        action = ingest.flag_mask(
            "out_of_order",
            mask,
            ln,
            lambda i: f"timestamp {t[i]!r} after {running_max[i]!r}",
        )
        if action == "repair":
            order = np.argsort(t, kind="stable")
            ln, u, v, t = ln[order], u[order], v[order], t[order]
        elif action == "quarantine":
            ln, u, v, t = _drop(~mask, ln, u, v, t)

    # Canonicalise endpoints (u < v) before duplicate detection.
    us = np.minimum(u, v)
    vs = np.maximum(u, v)

    # 6. duplicate_edge — a pair seen earlier in the (now ordered) stream.
    if len(us):
        pairs = np.stack((us, vs), axis=1)
        _, first_idx = np.unique(pairs, axis=0, return_index=True)
        keep = np.zeros(len(us), dtype=bool)
        keep[first_idx] = True
        mask = ~keep
        if ingest.flag_mask(
            "duplicate_edge",
            mask,
            ln,
            lambda i: f"duplicate edge ({int(us[i])}, {int(vs[i])})",
        ) in ("repair", "quarantine"):
            ln, us, vs, t = _drop(keep, ln, us, vs, t)

    return us, vs, t


def _validate_columns(
    ln: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    ingest: _Ingest,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Run the structural taxonomy checks, in order, applying the policy.

    Returns the accepted, canonical (``u < v``), time-sorted columns.
    The check order is fixed and documented: node ids, finite times,
    negative times, self-loops, ordering, duplicates — a strict policy
    reports the first class in this order that has an offender.
    """
    ln, u, v, t = _validate_local(ln, u, v, t, ingest)
    return _validate_stream(ln, u, v, t, ingest)


# ---------------------------------------------------------------------------
# Quarantine sidecar
# ---------------------------------------------------------------------------
def _write_rejects(
    quarantine_path: "str | os.PathLike[str]",
    source: "str | os.PathLike[str]",
    quarantined: "dict[int, str]",
    raw: "dict[int, str] | None" = None,
) -> None:
    """Divert the offending raw lines to the sidecar, in file order.

    The raw text comes from one extra read pass over the source (only on
    the quarantine path), so the hot path never buffers lines; the
    sharded merge passes ``raw`` directly (workers already re-read their
    own chunk) to skip that pass.  Records are tab-separated ``lineno,
    class, raw line`` — raw lines may contain further tabs, hence the
    ``maxsplit=2`` in :func:`read_rejects`.
    """
    if raw is None:
        raw = _fetch_lines(source, set(quarantined))
    with open(quarantine_path, "w", encoding="utf-8") as fh:
        fh.write("# repro-rejects v1\n")
        fh.write(f"# source: {source}\n")
        fh.write("# lineno<TAB>error_class<TAB>raw line\n")
        for lineno in sorted(quarantined):
            fh.write(f"{lineno}\t{quarantined[lineno]}\t{raw.get(lineno, '')}\n")


def read_rejects(path: "str | os.PathLike[str]") -> "list[RejectRecord]":
    """Parse a ``.rejects`` sidecar back into records (lossless).

    Also accepts a ``repro-shards v1`` manifest, in which case the
    per-source sidecars it references are read in shard order and each
    record carries its source trace in :attr:`RejectRecord.path`.
    """
    with open(path, "rb") as probe:
        head = probe.read(1)
    if head == b"{":
        from repro.ingest.shard.planner import read_manifest_rejects

        return read_manifest_rejects(path)
    records: list[RejectRecord] = []
    source = ""
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\r\n")
            if not line or line.startswith("#"):
                if line.startswith("# source: "):
                    source = line[len("# source: ") :]
                continue
            fields = line.split("\t", 2)
            if len(fields) != 3:
                raise TraceFormatError(
                    "parse_error", str(path), lineno, line,
                    "expected 'lineno<TAB>class<TAB>raw line'",
                )
            records.append(
                RejectRecord(int(fields[0]), fields[1], fields[2], source)
            )
    return records


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------
def stream_checksum(u: np.ndarray, v: np.ndarray, t: np.ndarray) -> str:
    """Truncated sha256 over the accepted column bytes."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(u, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(v, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(t, dtype=np.float64).tobytes())
    return digest.hexdigest()[:16]


def scan_trace(
    path: "str | os.PathLike[str]",
    policy: "IngestPolicy | None" = None,
    quarantine_path: "str | os.PathLike[str] | None" = None,
    jobs: "int | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, IngestReport]":
    """Run the full ingest pipeline, returning accepted columns + report.

    The array-level entry point: :func:`load_trace` wraps it in a
    ``TemporalGraph``; the auditor and benchmarks use it directly.

    ``jobs`` selects the sharded parallel path (``repro.ingest.shard``)
    when > 1; ``None`` defers to ``$REPRO_JOBS`` (unset: serial) and 1
    keeps the serial pipeline below.  Both paths produce byte-identical
    columns, checksum, taxonomy counts, and rejects sidecar.
    """
    if jobs is None:
        # Literal env name (not shard.JOBS_ENV_VAR) so the serial hot
        # path never imports the shard subsystem just to check it; the
        # shard path's resolve_jobs re-reads and validates the value.
        env = os.environ.get("REPRO_JOBS")
        sharded = bool(env) and env != "1"
    else:
        sharded = int(jobs) != 1
    if sharded:
        from repro.ingest.shard import scan_shards

        return scan_shards(
            [path], policy=policy, quarantine_path=quarantine_path, jobs=jobs
        )
    policy = policy or IngestPolicy.default()
    report = IngestReport(
        path=str(path), policy=policy.describe(), gzip=is_gzip(path)
    )
    ingest = _Ingest(path, policy, report)
    with telemetry.tracer.span("ingest.scan", path=str(path)) as scan_span:
        with telemetry.tracer.span("ingest.read_columns"):
            ln, u, v, t = _read_columns(path, ingest)
        with telemetry.tracer.span("ingest.validate", events=len(ln)):
            us, vs, ts = _validate_columns(ln, u, v, t, ingest)
        if ingest.quarantined:
            sidecar = quarantine_path or f"{path}.rejects"
            _write_rejects(sidecar, path, ingest.quarantined)
            report.quarantine_path = str(sidecar)
        report.events_accepted = len(ts)
        if len(ts):
            report.min_time = float(ts[0])
            report.max_time = float(ts[-1])
        report.checksum = stream_checksum(us, vs, ts)
        scan_span.set(
            events_parsed=report.events_parsed,
            events_accepted=report.events_accepted,
        )
        _record_ingest_metrics(report)
    return us, vs, ts, report


def _record_ingest_metrics(report: IngestReport) -> None:
    """Mirror the finished :class:`IngestReport` into telemetry counters.

    The counters in a recorded trace therefore match the run's ingest
    report exactly — ``repro trace summary`` can be cross-checked against
    ``repro audit`` output for the same file and policy.
    """
    registry = telemetry.metrics
    if not registry.enabled:
        return
    registry.counter("ingest.lines_total").inc(report.lines_total)
    registry.counter("ingest.events_parsed").inc(report.events_parsed)
    registry.counter("ingest.events_accepted").inc(report.events_accepted)
    for bucket, name in (
        (report.flagged, "ingest.flagged_total"),
        (report.repaired, "ingest.repaired_total"),
        (report.quarantined, "ingest.quarantined_total"),
    ):
        for error_class, count in bucket.items():
            registry.counter(name, **{"class": error_class}).inc(count)


def load_trace(
    path: "str | os.PathLike[str]",
    policy: "IngestPolicy | None" = None,
    quarantine_path: "str | os.PathLike[str] | None" = None,
    jobs: "int | None" = None,
) -> TemporalGraph:
    """Load a trace file into a :class:`TemporalGraph`, hardened.

    ``policy`` defaults to the legacy-compatible
    :meth:`IngestPolicy.default` (malformed lines and self-loops raise,
    duplicates drop, unsorted files sort).  The returned graph carries the
    load's :class:`IngestReport` as ``trace.ingest_report``.  ``jobs > 1``
    ingests through the sharded parallel path with byte-identical output.
    """
    us, vs, ts, report = scan_trace(
        path, policy=policy, quarantine_path=quarantine_path, jobs=jobs
    )
    trace = TemporalGraph.from_columns(us, vs, ts, validated=True)
    trace.ingest_report = report
    return trace


def iter_events(
    path: "str | os.PathLike[str]",
) -> Iterator[tuple[int, int, float]]:
    """Per-line streaming iterator with taxonomy-classified strict errors.

    The generator analogue of the legacy ``iter_trace_lines`` contract
    (2-column lines get synthetic line-number timestamps); the block
    pipeline of :func:`load_trace` supersedes it for whole-file loads.
    """
    with open_trace_text(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            verdict = classify_event_line(parts)
            if verdict is not None:
                error_class, detail = verdict
                raise TraceFormatError(error_class, str(path), lineno, line, detail)
            if len(parts) == 2:
                yield int(parts[0]), int(parts[1]), float(lineno)
            else:
                yield int(parts[0]), int(parts[1]), float(parts[2])
