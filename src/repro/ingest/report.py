"""Ingest provenance: what the loader saw, fixed, and rejected.

"Predictability of real temporal networks" (PAPERS.md) stresses that
preprocessing choices dominate reported predictability, so every load
produces an :class:`IngestReport` — attached to the returned
``TemporalGraph`` as ``trace.ingest_report`` and printed by the CLI — that
records exactly how the raw file was turned into the accepted event
stream: per-class flagged/repaired/quarantined counts, the accepted-stream
time span, and a checksum of the accepted columns (so two loads can be
compared without re-reading the file).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def _zero_counts() -> dict[str, int]:
    return {}


@dataclass
class IngestReport:
    """Provenance record of one :func:`repro.ingest.load_trace` call."""

    path: str = ""
    #: error class -> action, the policy the load ran under.
    policy: dict = field(default_factory=dict)
    #: physical lines in the file, including comments and blanks.
    lines_total: int = 0
    comment_lines: int = 0
    blank_lines: int = 0
    #: candidate events that entered validation (parsed or parse-flagged).
    events_parsed: int = 0
    #: events in the accepted stream (== loaded graph's num_edges).
    events_accepted: int = 0
    #: error class -> number of records detected in that class.
    flagged: dict = field(default_factory=_zero_counts)
    #: error class -> number of records repaired (dropped/clamped/reordered).
    repaired: dict = field(default_factory=_zero_counts)
    #: error class -> number of lines diverted to the sidecar file.
    quarantined: dict = field(default_factory=_zero_counts)
    #: sidecar path, set only when at least one line was quarantined.
    quarantine_path: "str | None" = None
    #: accepted-stream time span (0.0/0.0 when no events were accepted).
    min_time: float = 0.0
    max_time: float = 0.0
    #: sha256 (truncated) over the accepted (u, v, t) column bytes.
    checksum: str = ""
    #: True when the input was gzip-compressed.
    gzip: bool = False
    #: format version parsed from a ``# repro-trace vN`` header, if present.
    format_version: "int | None" = None
    #: every source trace file, in stream order (multi-file shard sets;
    #: empty for a plain single-file load so serial payloads are stable).
    sources: list = field(default_factory=list)
    #: per-source sidecar paths for multi-file shard sets (satellite of
    #: quarantine_path, which stays the single/primary sidecar).
    quarantine_paths: list = field(default_factory=list)
    #: per-shard worker timing rows from a sharded ingest: dicts with
    #: ``shard`` (label), ``events``, ``seconds``, ``attempts``, ``cached``.
    shard_timings: list = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_flagged(self) -> int:
        return sum(self.flagged.values())

    @property
    def clean(self) -> bool:
        """True when no record needed repairing or quarantining."""
        return self.total_flagged == 0

    def count(self, error_class: str, bucket: "dict | None" = None) -> int:
        return (self.flagged if bucket is None else bucket).get(error_class, 0)

    # ------------------------------------------------------------------
    def _counts_str(self, counts: dict) -> str:
        return " ".join(f"{k}={counts[k]}" for k in sorted(counts)) or "none"

    def summary(self) -> str:
        """Multi-line human summary (the CLI prints this on stderr)."""
        src = f"{self.path} (gzip)" if self.gzip else self.path
        version = (
            f" format v{self.format_version}" if self.format_version else ""
        )
        lines = [
            f"[ingest] {src}:{version} {self.lines_total} lines "
            f"({self.comment_lines} comment, {self.blank_lines} blank), "
            f"{self.events_parsed} events parsed, "
            f"{self.events_accepted} accepted",
            f"[ingest] flagged: {self._counts_str(self.flagged)}"
            f" | repaired: {self._counts_str(self.repaired)}"
            f" | quarantined: {self._counts_str(self.quarantined)}"
            + (f" -> {self.quarantine_path}" if self.quarantine_path else ""),
        ]
        if self.events_accepted:
            lines.append(
                f"[ingest] time span [{self.min_time!r}, {self.max_time!r}] "
                f"days, checksum {self.checksum}"
            )
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-safe dict (for logging / result files)."""
        payload = {
            "path": self.path,
            "policy": dict(self.policy),
            "lines_total": self.lines_total,
            "comment_lines": self.comment_lines,
            "blank_lines": self.blank_lines,
            "events_parsed": self.events_parsed,
            "events_accepted": self.events_accepted,
            "flagged": dict(self.flagged),
            "repaired": dict(self.repaired),
            "quarantined": dict(self.quarantined),
            "quarantine_path": self.quarantine_path,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "checksum": self.checksum,
            "gzip": self.gzip,
            "format_version": self.format_version,
        }
        if self.sources:
            payload["sources"] = list(self.sources)
        if self.quarantine_paths:
            payload["quarantine_paths"] = list(self.quarantine_paths)
        if self.shard_timings:
            payload["shard_timings"] = [dict(row) for row in self.shard_timings]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2)
