"""Hardened trace ingestion: streaming validation, repair, quarantine.

The data-plane counterpart of the execution-plane fault tolerance in
:mod:`repro.eval`: crawled OSN traces arrive with parse errors,
self-loops, duplicate events, non-finite or negative timestamps, and
out-of-order records (Section 3 of the paper), and every one of those is
classified, policy-handled, and reported instead of trusted or silently
dropped.

Public surface:

- :func:`load_trace` — streaming block loader returning a
  ``TemporalGraph`` with an attached :class:`IngestReport`;
- :func:`scan_trace` — the array-level pipeline (columns + report);
- :class:`IngestPolicy` — per-error-class ``strict`` / ``repair`` /
  ``quarantine`` actions;
- :class:`TraceFormatError` — located, classified format errors;
- :func:`read_rejects` — parse a quarantine sidecar back losslessly
  (also accepts a ``repro-shards v1`` manifest);
- :mod:`repro.ingest.shard` — parallel sharded ingest with ordered merge
  (``load_trace(..., jobs=N)`` delegates to it; byte-identical output).

The shard subsystem is imported lazily (``from repro.ingest import
shard``) so the serial hot path pays nothing for it.
"""

from repro.ingest.errors import ERROR_CLASSES, RejectRecord, TraceFormatError
from repro.ingest.loader import (
    classify_event_line,
    is_gzip,
    iter_events,
    load_trace,
    open_trace_text,
    read_rejects,
    scan_trace,
    stream_checksum,
)
from repro.ingest.policy import ACTIONS, IngestPolicy
from repro.ingest.report import IngestReport

__all__ = [
    "ACTIONS",
    "ERROR_CLASSES",
    "IngestPolicy",
    "IngestReport",
    "RejectRecord",
    "TraceFormatError",
    "classify_event_line",
    "is_gzip",
    "iter_events",
    "load_trace",
    "open_trace_text",
    "read_rejects",
    "scan_trace",
    "stream_checksum",
]
