"""Counters, gauges, and fixed-bucket histograms with a null fast path.

The registry is deliberately tiny — three instrument kinds, label sets as
sorted tuples, no timestamps — because its consumers are an experiment
runner and a Prometheus textfile, not a metrics backend.  Two properties
matter and are kept strict:

- **Mergeable.**  Worker processes accumulate into their own registry and
  ship :meth:`MetricsRegistry.drain` payloads back with each cell result;
  :meth:`MetricsRegistry.merge` folds them into the driver's registry.
  Counters and histogram buckets add; gauges keep the latest shipped
  value.  This is the fork-safe path — workers never see a sink.
- **Free when disabled.**  The module default is :data:`NULL_REGISTRY`;
  its instrument factories return shared singletons whose ``inc`` /
  ``set`` / ``observe`` do nothing, and hot call sites guard on
  ``registry.enabled`` so the disabled cost is one attribute lookup.
"""

from __future__ import annotations

from bisect import bisect_left

#: default latency buckets, seconds (span-scale work: ms to a minute).
SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: default magnitude buckets for set sizes (candidate pairs, rejects, ...).
SIZE_BUCKETS = (10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: "int | float" = 1) -> None:
        self.value += n


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: "int | float") -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    extra overflow bucket catches everything above the last edge (the
    Prometheus ``+Inf`` bucket).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: "tuple[float, ...]" = SECONDS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: "int | float") -> None:
        # bisect_left keeps the upper edges inclusive (Prometheus ``le``).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullInstrument:
    """Shared stand-in for all three kinds when telemetry is disabled."""

    __slots__ = ()

    def inc(self, n=1) -> None:
        return None

    def set(self, value) -> None:
        return None

    def observe(self, value) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every factory returns the shared null instrument."""

    enabled = False

    def counter(self, name, /, **labels):  # noqa: ARG002
        return _NULL_INSTRUMENT

    def gauge(self, name, /, **labels):  # noqa: ARG002
        return _NULL_INSTRUMENT

    def histogram(self, name, /, bounds=None, **labels):  # noqa: ARG002
        return _NULL_INSTRUMENT

    def payloads(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def merge(self, payloads) -> None:
        return None


#: the process-wide disabled registry (module default in repro.telemetry).
NULL_REGISTRY = NullRegistry()


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Names + label sets -> instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}

    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, /, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, /, **labels) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, /, bounds: "tuple[float, ...] | None" = None, **labels
    ) -> Histogram:
        chosen = SECONDS_BUCKETS if bounds is None else tuple(bounds)
        return self._get("histogram", name, labels, lambda: Histogram(chosen))

    # -- serialisation --------------------------------------------------
    def payloads(self) -> "list[dict]":
        """JSON-safe dump of every instrument, sorted by (kind, name, labels)."""
        out = []
        for (kind, name, labels) in sorted(self._instruments):
            instrument = self._instruments[(kind, name, labels)]
            payload = {"kind": kind, "name": name, "labels": dict(labels)}
            if kind == "histogram":
                payload["bounds"] = list(instrument.bounds)
                payload["counts"] = list(instrument.counts)
                payload["sum"] = instrument.sum
                payload["count"] = instrument.count
            else:
                payload["value"] = instrument.value
            out.append(payload)
        return out

    def drain(self) -> "list[dict]":
        """Dump then zero every instrument (worker-side delta shipping)."""
        out = self.payloads()
        for (kind, _name, _labels), instrument in self._instruments.items():
            if kind == "histogram":
                instrument.counts = [0] * len(instrument.counts)
                instrument.sum = 0.0
                instrument.count = 0
            else:
                instrument.value = 0
        return [p for p in out if p.get("value") or p.get("count")]

    def merge(self, payloads: "list[dict]") -> None:
        """Fold shipped payloads into this registry (additive for counters
        and histograms, last-write for gauges)."""
        for p in payloads:
            kind, name, labels = p["kind"], p["name"], p.get("labels", {})
            if kind == "counter":
                self.counter(name, **labels).inc(p["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(p["value"])
            elif kind == "histogram":
                hist = self.histogram(name, bounds=tuple(p["bounds"]), **labels)
                if tuple(p["bounds"]) != hist.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds diverge: "
                        f"{tuple(p['bounds'])} vs {hist.bounds}"
                    )
                for i, c in enumerate(p["counts"]):
                    hist.counts[i] += c
                hist.sum += p["sum"]
                hist.count += p["count"]
            else:
                raise ValueError(f"unknown metric payload kind {kind!r}")
