"""Span-based tracing with a strict no-op fast path.

The paper's own argument (§4–§5) is that *explaining* link-prediction
accuracy needs visibility into what the pipeline actually did — candidate
set sizes, per-phase cost, retry churn — so the tracer is built for the
experiment runner's execution model rather than for generic RPC tracing:

- **Nested context-manager spans.**  ``tracer.span("plan")`` opens a span
  whose parent is whatever span is currently open in this process; wall
  time comes from ``time.monotonic()`` (never the settable wall clock),
  and each span carries a free-form attribute dict.
- **Stable ids.**  Span ids are sequential per tracer (``s000001``, ...),
  not random: two traces of the same serial run name their spans
  identically, which makes trace diffs meaningful.  Parent links are by
  id, so a trace file is a self-contained tree.
- **Retroactive recording.**  The parallel driver learns a cell's
  execution window only when its future completes; :meth:`Tracer.record`
  admits a span with explicit start/end after the fact.
- **Fork-safe merging.**  Worker processes buffer spans in memory (no
  sink) and ship them back inside cell results; :meth:`Tracer.merge`
  re-ids them under a worker-unique prefix and re-parents their roots
  onto the driver-side cell span.  Only the driver process ever writes
  the trace file.  ``CLOCK_MONOTONIC`` is system-wide on Linux, so
  worker timestamps land on the driver's timeline without translation.
- **Disabled means free.**  The module-level default is
  :data:`NULL_TRACER`, whose ``span()`` returns one shared do-nothing
  context manager; call sites that run per-event guard with
  ``tracer.enabled`` (a plain class attribute — one lookup) so a
  disabled tracer costs one attribute check per call site.
"""

from __future__ import annotations

import os
import time


class _NullSpan:
    """The shared do-nothing span; every disabled call site gets this one."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: singleton returned by :meth:`NullTracer.span` — never allocates.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, /, **attrs) -> _NullSpan:  # noqa: ARG002
        return NULL_SPAN

    def record(self, name, start, end, attrs=None, parent_id=None) -> None:
        return None

    def merge(self, payloads, parent_id=None, prefix="") -> None:
        return None

    def drain(self) -> list:
        return []

    def flush(self) -> None:
        return None

    def current_span_id(self) -> None:
        return None


#: the process-wide disabled tracer (module default in repro.telemetry).
NULL_TRACER = NullTracer()


class Span:
    """One open span; closes (and buffers its payload) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start", "attrs")
    enabled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = tracer.current_span_id()
        self.attrs = attrs
        self.start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self.span_id)
        self.start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(
            {
                "id": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "start": self.start,
                "end": end,
                "attrs": self.attrs,
            }
        )
        return False


class Tracer:
    """Recording tracer: buffers finished spans, optionally auto-flushing.

    ``on_flush`` (driver mode) receives batches of finished span payloads
    whenever the buffer reaches ``buffer_limit`` — the collector hooks the
    JSONL sink here.  Without it (worker mode) spans accumulate until
    :meth:`drain` ships them across the process boundary.  Flushing is
    guarded by the owning pid, so a forked child that inherits a driver
    tracer can never write to the parent's sink.
    """

    enabled = True

    def __init__(
        self,
        prefix: str = "s",
        buffer_limit: int = 512,
        on_flush=None,
    ) -> None:
        self.t0 = time.monotonic()
        self.wall0 = time.time()
        self._prefix = prefix
        self._counter = 0
        self._stack: list[str] = []
        self._buffer: list[dict] = []
        self._limit = max(1, buffer_limit)
        self._on_flush = on_flush
        self._pid = os.getpid()

    # -- ids and parenting ---------------------------------------------
    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._prefix}{self._counter:06d}"

    def current_span_id(self) -> "str | None":
        """Id of the innermost open span in this process, if any."""
        return self._stack[-1] if self._stack else None

    # -- recording ------------------------------------------------------
    def span(self, name: str, /, **attrs) -> Span:
        """Open a nested span as a context manager (``name`` is
        positional-only so an attribute may also be called ``name``)."""
        return Span(self, name, attrs)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        attrs: "dict | None" = None,
        parent_id: "str | None" = None,
    ) -> str:
        """Admit a span retroactively with explicit monotonic start/end.

        Returns the new span's id so callers can hang children under it
        (the parallel driver re-parents shipped worker spans this way).
        """
        span_id = self._next_id()
        self._finish(
            {
                "id": span_id,
                "parent": parent_id if parent_id is not None else self.current_span_id(),
                "name": name,
                "start": start,
                "end": end,
                "attrs": dict(attrs or {}),
            }
        )
        return span_id

    def merge(
        self, payloads: "list[dict]", parent_id: "str | None" = None, prefix: str = ""
    ) -> None:
        """Adopt spans shipped from another process.

        Ids are namespaced under ``prefix`` (worker-unique, so pool
        rebuilds and pid reuse cannot collide) and any span whose parent
        is not in the shipped batch — the worker-side roots — is
        re-parented onto ``parent_id``.
        """
        shipped = {p["id"] for p in payloads}
        for p in payloads:
            adopted = dict(p)
            adopted["id"] = prefix + p["id"]
            parent = p.get("parent")
            adopted["parent"] = prefix + parent if parent in shipped else parent_id
            self._finish(adopted)

    # -- buffering ------------------------------------------------------
    def _finish(self, payload: dict) -> None:
        self._buffer.append(payload)
        if self._on_flush is not None and len(self._buffer) >= self._limit:
            self.flush()

    def flush(self) -> None:
        """Hand buffered spans to ``on_flush`` (driver process only)."""
        if self._on_flush is None or not self._buffer:
            return
        if os.getpid() != self._pid:
            # forked child holding the driver's tracer: never touch the sink.
            return
        batch, self._buffer = self._buffer, []
        self._on_flush(batch)

    def drain(self) -> "list[dict]":
        """Return and clear the buffered spans (worker-side shipping)."""
        batch, self._buffer = self._buffer, []
        return batch
