"""repro.telemetry — tracing, metrics, and profiling for the pipeline.

The module itself is the switchboard.  ``telemetry.tracer`` and
``telemetry.metrics`` are module-level globals that default to the null
implementations, so every instrumented call site in ingest, the graph
core, the metric kernels, and the runner pays one attribute lookup when
telemetry is off.  :func:`configure` swaps in a recording
:class:`~repro.telemetry.collect.TelemetrySession` for the duration of a
run; :func:`install_worker_mode` swaps in buffer-only instances inside a
forked worker so spans and metric deltas ride home on cell results
instead of racing the driver for the trace file.

Typical driver lifecycle (what ``repro run --telemetry`` does)::

    from repro import telemetry

    telemetry.configure("run.trace.jsonl", prom_path="run.prom")
    try:
        ...  # instrumented work
    finally:
        telemetry.shutdown()

Typical call-site shape (guard first — disabled must stay free)::

    from repro import telemetry

    def hot_function(...):
        if telemetry.tracer.enabled:
            with telemetry.tracer.span("phase.name", size=n):
                return _hot_function_impl(...)
        return _hot_function_impl(...)
"""

from __future__ import annotations

import atexit
import os
import signal as _signal
import time

from repro.telemetry.collect import (
    JsonlTraceSink,
    PrometheusTextfileSink,
    TelemetrySession,
    prometheus_text,
)
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.summary import (
    TraceFile,
    TraceFileError,
    read_trace,
    render_tree,
    summarize,
)
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "tracer",
    "metrics",
    "configure",
    "shutdown",
    "flush",
    "install_signal_flush",
    "reset",
    "install_worker_mode",
    "drain_worker_payload",
    "worker_token",
    "Tracer",
    "NullTracer",
    "Span",
    "MetricsRegistry",
    "NullRegistry",
    "TelemetrySession",
    "JsonlTraceSink",
    "PrometheusTextfileSink",
    "prometheus_text",
    "TraceFile",
    "TraceFileError",
    "read_trace",
    "render_tree",
    "summarize",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
]

#: the active tracer — NULL_TRACER unless :func:`configure` or
#: :func:`install_worker_mode` swapped in a recording one.
tracer = NULL_TRACER

#: the active metrics registry, same lifecycle as :data:`tracer`.
metrics = NULL_REGISTRY

_session: "TelemetrySession | None" = None
_worker_token: "str | None" = None
_atexit_registered = False


def configure(
    trace_path: "str | os.PathLike[str]",
    prom_path: "str | os.PathLike[str] | None" = None,
    name: str = "run",
) -> TelemetrySession:
    """Start recording: open the trace file and swap in live instances.

    Raises :class:`RuntimeError` if telemetry is already configured in
    this process — two sessions writing one global tracer would
    interleave unrelated span trees.

    An ``atexit`` hook is registered (once per process) so a session the
    owner forgot to :func:`shutdown` — or a long-running process that
    exits through ``sys.exit`` — still flushes buffered spans and
    appends its final metric records; :meth:`TelemetrySession.close` is
    idempotent and pid-guarded, so an explicit shutdown first costs
    nothing.  Hard kills bypass ``atexit``; see
    :func:`install_signal_flush` for the SIGTERM story.
    """
    global tracer, metrics, _session, _atexit_registered
    if _session is not None or _worker_token is not None:
        raise RuntimeError("telemetry is already configured in this process")
    _session = TelemetrySession(trace_path, prom_path=prom_path, name=name)
    tracer = _session.tracer
    metrics = _session.registry
    if not _atexit_registered:
        atexit.register(shutdown)
        _atexit_registered = True
    return _session


def shutdown() -> None:
    """Flush + close the active session (if any) and restore the null pair."""
    global tracer, metrics, _session, _worker_token
    if _session is not None:
        _session.close()
    tracer = NULL_TRACER
    metrics = NULL_REGISTRY
    _session = None
    _worker_token = None


#: alias used by worker initialisers when telemetry is off: make sure a
#: forked child never keeps the parent's recording instances.
reset = shutdown


def flush() -> None:
    """Push buffered spans of the active session to its trace file.

    A no-op when telemetry is off; never closes the session.
    """
    if _session is not None:
        _session.flush()


def install_signal_flush(
    signums: "tuple[int, ...]" = (_signal.SIGTERM,),
) -> None:
    """Close the active session cleanly when one of ``signums`` arrives.

    ``atexit`` hooks do not run when a process dies to an unhandled
    SIGTERM, so a killed long-running server would lose every buffered
    span and all final metric records.  This installs a chaining handler:
    on signal it closes the session (flush spans, append metrics, close
    the file — leaving a fully parseable trace), restores the previously
    installed handler, and re-raises the signal so the process still
    terminates with the exact status an observer expects (e.g. 143 for
    SIGTERM).  Processes that handle SIGTERM themselves (``repro serve``
    drains in-flight requests first) should *not* install this — their
    orderly shutdown path already flushes.
    """
    def _flush_and_reraise(signum, frame):  # noqa: ARG001
        shutdown()
        _signal.signal(signum, previous.get(signum, _signal.SIG_DFL))
        os.kill(os.getpid(), signum)

    previous = {}
    for signum in signums:
        previous[signum] = _signal.getsignal(signum)
        _signal.signal(signum, _flush_and_reraise)


def install_worker_mode() -> str:
    """Swap in buffer-only instances inside a forked worker process.

    The returned token is unique per worker *incarnation* — pid alone is
    not enough because pool rebuilds can reuse pids — and prefixes every
    shipped span id when the driver adopts them.
    """
    global tracer, metrics, _session, _worker_token
    _session = None  # inherited driver session must never flush from here
    _worker_token = f"{os.getpid():x}.{time.monotonic_ns() & 0xFFFFFF:06x}"
    tracer = Tracer()
    metrics = MetricsRegistry()
    return _worker_token


def worker_token() -> "str | None":
    return _worker_token


def drain_worker_payload() -> "dict | None":
    """Ship buffered spans + metric deltas out of a worker.

    Returns ``{"token", "spans", "metrics"}`` or ``None`` when there is
    nothing to ship (including the driver-off / not-a-worker case).
    """
    if _worker_token is None:
        return None
    spans = tracer.drain()
    deltas = metrics.drain()
    if not spans and not deltas:
        return None
    return {"token": _worker_token, "spans": spans, "metrics": deltas}
