"""Buffered collection and export: JSONL trace sink + Prometheus textfile.

One :class:`TelemetrySession` owns the recording side of a run: a
:class:`~repro.telemetry.tracer.Tracer` flushing into an append-only JSONL
trace file, a :class:`~repro.telemetry.metrics.MetricsRegistry` dumped into
the same file (and optionally a Prometheus textfile) at close.  The file
layout is line-delimited JSON, self-describing and crash-tolerant — a
truncated final line loses at most one span:

- line 1: ``{"kind": "header", "version": 1, "name": ..., "started_unix": ...}``
- spans:  ``{"kind": "span", "id", "parent", "name", "start", "end", "attrs"}``
  with ``start``/``end`` in seconds relative to the header's origin;
- metrics (at close): ``{"kind": "counter"|"gauge"|"histogram", ...}``.

The Prometheus exporter writes the node-exporter *textfile collector*
format: point a scrape at the emitted ``.prom`` file (or serve it) and the
run's counters and histograms land in a normal Prometheus setup with the
``repro_`` prefix.  Only the session-owning process ever writes either
file; forked workers inherit a session only to have it neutralised by
:func:`repro.telemetry.install_worker_mode`.
"""

from __future__ import annotations

import json
import os
import re
import time

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

TRACE_FILE_VERSION = 1

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


class JsonlTraceSink:
    """Append-only JSONL writer for one trace file.

    Each batch is written and flushed immediately, so a forked child never
    inherits buffered, unwritten lines it could duplicate.
    """

    def __init__(self, path: "str | os.PathLike[str]", name: str, t0: float) -> None:
        self.path = os.fspath(path)
        self._t0 = t0
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "kind": "header",
                "version": TRACE_FILE_VERSION,
                "name": name,
                "started_unix": time.time(),
                "pid": os.getpid(),
            }
        )

    def _write_line(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, separators=(",", ":"), default=str) + "\n")
        self._fh.flush()

    def write_spans(self, payloads: "list[dict]") -> None:
        for p in payloads:
            self._write_line(
                {
                    "kind": "span",
                    "id": p["id"],
                    "parent": p["parent"],
                    "name": p["name"],
                    "start": round(p["start"] - self._t0, 6),
                    "end": round(p["end"] - self._t0, 6),
                    "attrs": p["attrs"],
                }
            )

    def write_metrics(self, payloads: "list[dict]") -> None:
        for p in payloads:
            self._write_line(p)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_NAME_RE.sub("_", name)

def _prom_labels(labels: dict, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    items = [
        (_PROM_LABEL_RE.sub("_", k), str(v)) for k, v in sorted(labels.items())
    ] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: "int | float") -> str:
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(payloads: "list[dict]") -> str:
    """Render registry payloads in the Prometheus exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for p in payloads:
        name = _prom_name(p["name"])
        kind, labels = p["kind"], p.get("labels", {})
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_prom_labels(labels)} {_format_value(p['value'])}")
        elif kind == "histogram":
            cumulative = 0
            for bound, count in zip(p["bounds"], p["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, (('le', repr(float(bound))),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(labels, (('le', '+Inf'),))} {p['count']}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_format_value(p['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} {p['count']}")
        else:
            raise ValueError(f"unknown metric payload kind {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusTextfileSink:
    """Atomic writer for the textfile-collector export."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)

    def write(self, payloads: "list[dict]") -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(payloads))
        os.replace(tmp, self.path)


class TelemetrySession:
    """The recording side of one run: tracer + registry + sinks.

    Created by :func:`repro.telemetry.configure`; :meth:`close` flushes
    remaining spans, appends the final metric records to the trace file,
    and (if configured) writes the Prometheus textfile.  Closing is
    pid-guarded and idempotent.
    """

    def __init__(
        self,
        trace_path: "str | os.PathLike[str]",
        prom_path: "str | os.PathLike[str] | None" = None,
        name: str = "run",
    ) -> None:
        self.tracer = Tracer(on_flush=self._on_flush)
        self.registry = MetricsRegistry()
        self._sink = JsonlTraceSink(trace_path, name=name, t0=self.tracer.t0)
        self._prom = PrometheusTextfileSink(prom_path) if prom_path else None
        self._pid = os.getpid()
        self._closed = False

    def _on_flush(self, payloads: "list[dict]") -> None:
        if not self._closed:
            self._sink.write_spans(payloads)

    @property
    def trace_path(self) -> str:
        return self._sink.path

    def flush(self) -> None:
        """Push buffered spans to the trace file without closing.

        Long-running processes (the serving layer's periodic flusher)
        call this so a later hard kill loses at most the spans recorded
        since the previous flush, never the whole buffer.  Pid-guarded
        like :meth:`close` so a forked child cannot interleave writes.
        """
        if self._closed or os.getpid() != self._pid:
            return
        self.tracer.flush()

    def close(self) -> None:
        if self._closed or os.getpid() != self._pid:
            return
        self.tracer.flush()
        self._sink.write_metrics(self.registry.payloads())
        self._closed = True
        self._sink.close()
        if self._prom is not None:
            self._prom.write(self.registry.payloads())
