"""Reading recorded trace files and rendering cost/counter tables.

This is the consumer side of the subsystem: ``repro trace summary`` and
``repro trace show`` parse a JSONL trace written by
:class:`~repro.telemetry.collect.JsonlTraceSink` and render, respectively,
a per-phase wall-time + counter report and the full span tree.  The reader
is strict — a missing or malformed header raises :class:`TraceFileError`
(a ``ValueError``), which the CLI maps to exit code 2.
"""

from __future__ import annotations

import json
import os

from repro.telemetry.collect import TRACE_FILE_VERSION


class TraceFileError(ValueError):
    """The file is not a readable repro trace."""


class TraceFile:
    """Parsed trace: header dict, span records, metric records."""

    def __init__(self, header: dict, spans: "list[dict]", metrics: "list[dict]") -> None:
        self.header = header
        self.spans = spans
        self.metrics = metrics
        self.by_id = {s["id"]: s for s in spans}
        self.children: dict[str | None, list[dict]] = {}
        for span in spans:
            parent = span.get("parent")
            self.children.setdefault(
                parent if parent in self.by_id else None, []
            ).append(span)
        for siblings in self.children.values():
            siblings.sort(key=lambda s: (s["start"], s["id"]))

    @property
    def roots(self) -> "list[dict]":
        return self.children.get(None, [])

    def counters(self) -> "list[dict]":
        return [m for m in self.metrics if m["kind"] == "counter"]

    def counter_value(self, name: str, **labels) -> "int | float":
        total = 0
        for m in self.counters():
            if m["name"] != name:
                continue
            got = m.get("labels", {})
            if all(str(got.get(k)) == str(v) for k, v in labels.items()):
                total += m["value"]
        return total


def read_trace(path: "str | os.PathLike[str]") -> TraceFile:
    """Parse a JSONL trace file, validating the header."""
    path = os.fspath(path)
    header: "dict | None" = None
    spans: list[dict] = []
    metrics: list[dict] = []
    try:
        fh = open(path, encoding="utf-8")
    except OSError as exc:
        raise TraceFileError(f"cannot open trace file {path}: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFileError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceFileError(f"{path}:{lineno}: record has no 'kind'")
            kind = record["kind"]
            if lineno == 1:
                if kind != "header":
                    raise TraceFileError(f"{path}: first record is not a header")
                if record.get("version") != TRACE_FILE_VERSION:
                    raise TraceFileError(
                        f"{path}: unsupported trace version {record.get('version')!r}"
                    )
                header = record
            elif kind == "span":
                spans.append(record)
            elif kind in ("counter", "gauge", "histogram"):
                metrics.append(record)
            elif kind == "header":
                raise TraceFileError(f"{path}:{lineno}: duplicate header")
            # unknown kinds are skipped: forward-compatible by construction
    if header is None:
        raise TraceFileError(f"{path}: empty trace file")
    return TraceFile(header, spans, metrics)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _fmt_seconds(value: float) -> str:
    return f"{value:.3f}s"


def _span_wall(span: dict) -> float:
    return max(0.0, span["end"] - span["start"])


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _rollup(trace: TraceFile, parent: dict) -> "list[tuple[str, float, int]]":
    """(name, total wall, count) per distinct child-span name, by cost."""
    totals: dict[str, tuple[float, int]] = {}
    for child in trace.children.get(parent["id"], []):
        wall, count = totals.get(child["name"], (0.0, 0))
        totals[child["name"]] = (wall + _span_wall(child), count + 1)
    return sorted(
        ((name, wall, count) for name, (wall, count) in totals.items()),
        key=lambda row: -row[1],
    )


def summarize(trace: TraceFile) -> str:
    """Per-phase cost table plus counter and histogram tables."""
    lines: list[str] = []
    name = trace.header.get("name", "trace")
    lines.append(f"trace: {name} ({len(trace.spans)} spans)")

    for root in trace.roots:
        root_wall = _span_wall(root)
        lines.append(f"\n[{root['name']}] total {_fmt_seconds(root_wall)}")
        width = max(
            [len(r[0]) for r in _rollup(trace, root)] + [5]
        )
        for phase, wall, count in _rollup(trace, root):
            share = (wall / root_wall * 100.0) if root_wall > 0 else 0.0
            suffix = f"  x{count}" if count > 1 else ""
            lines.append(
                f"  {phase:<{width}}  {_fmt_seconds(wall):>10}  {share:5.1f}%{suffix}"
            )

    counters = trace.counters()
    if counters:
        lines.append("\n[counters]")
        width = max(len(m["name"] + _fmt_labels(m.get("labels", {}))) for m in counters)
        for m in counters:
            label = m["name"] + _fmt_labels(m.get("labels", {}))
            lines.append(f"  {label:<{width}}  {m['value']}")

    histograms = [m for m in trace.metrics if m["kind"] == "histogram"]
    if histograms:
        lines.append("\n[histograms]")
        for m in histograms:
            label = m["name"] + _fmt_labels(m.get("labels", {}))
            mean = m["sum"] / m["count"] if m["count"] else 0.0
            lines.append(
                f"  {label}  count={m['count']} sum={m['sum']:.6g} mean={mean:.6g}"
            )

    gauges = [m for m in trace.metrics if m["kind"] == "gauge"]
    if gauges:
        lines.append("\n[gauges]")
        for m in gauges:
            label = m["name"] + _fmt_labels(m.get("labels", {}))
            lines.append(f"  {label}  {m['value']}")
    return "\n".join(lines)


def render_tree(
    trace: TraceFile, max_depth: "int | None" = None, min_seconds: float = 0.0
) -> str:
    """The full span tree, indented, with durations and attributes."""
    lines: list[str] = [f"trace: {trace.header.get('name', 'trace')}"]

    def walk(span: dict, depth: int) -> None:
        wall = _span_wall(span)
        if wall < min_seconds and depth > 0:
            return
        attrs = span.get("attrs") or {}
        attr_text = (
            "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span['name']}  [{_fmt_seconds(wall)}]"
            f" ({span['id']}){attr_text}"
        )
        if max_depth is not None and depth + 1 > max_depth:
            return
        for child in trace.children.get(span["id"], []):
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)
    return "\n".join(lines)
