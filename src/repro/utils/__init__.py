"""Shared low-level helpers: RNG handling, node-pair canonicalisation."""

from repro.utils.pairs import canonical_pair, pair_array, pair_set
from repro.utils.rng import ensure_rng

__all__ = ["canonical_pair", "pair_array", "pair_set", "ensure_rng"]
