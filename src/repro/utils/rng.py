"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  ``ensure_rng``
normalises all three into a ``Generator`` so call sites never branch on the
type of their ``seed`` argument.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy ``Generator`` for any accepted seed specification.

    Passing an existing generator returns it unchanged, which lets a caller
    thread one RNG through a pipeline for reproducibility.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Used when an experiment repeats a stochastic step (e.g. 5 snowball-sample
    seeds per network, as in Section 5.1 of the paper) and each repetition
    must be independently reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.integers(0, 2**63 - 1, size=count)]
