"""Unicode sparklines for terminal reports.

Benchmarks and CLI reports work in plain text; a sparkline shows a series'
shape (the thing the reproduction cares about) without plotting
dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

import math

#: eight block heights; index by scaled value.
_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """Render ``values`` as a fixed-height unicode bar string.

    ``log=True`` uses a log1p scale, appropriate for accuracy-ratio series
    whose dynamic range spans orders of magnitude.  Non-finite values
    render as spaces.
    """
    cleaned = [float(v) for v in values]
    finite = [v for v in cleaned if math.isfinite(v)]
    if not finite:
        return " " * len(cleaned)
    scale = (lambda v: math.log1p(max(v, 0.0))) if log else (lambda v: v)
    scaled = [scale(v) if math.isfinite(v) else None for v in cleaned]
    finite_scaled = [v for v in scaled if v is not None]
    low, high = min(finite_scaled), max(finite_scaled)
    span = high - low
    chars = []
    for v in scaled:
        if v is None:
            chars.append(" ")
        elif span == 0:
            chars.append(_BARS[3])
        else:
            idx = int((v - low) / span * (len(_BARS) - 1))
            chars.append(_BARS[idx])
    return "".join(chars)


def labeled_sparkline(label: str, values: Sequence[float], width: int = 10,
                      log: bool = False) -> str:
    """``label  ▁▃▅█  min..max`` one-liner for report tables."""
    finite = [v for v in values if math.isfinite(v)]
    if finite:
        tail = f"{min(finite):.2f}..{max(finite):.2f}"
    else:
        tail = "-"
    return f"{label:<{width}s} {sparkline(values, log=log)} {tail}"
