"""Canonical representation of unordered node pairs.

Link prediction on undirected graphs constantly manipulates sets of node
pairs (candidates, predictions, ground truth).  A single canonical form —
``(min(u, v), max(u, v))`` — makes set membership and intersection reliable
across the whole library.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

Pair = tuple[int, int]

#: Packing base for position-pair keys: ``key = row * SHIFT + col``.  The
#: delta engine (:mod:`repro.graph.delta`) and its score tables use these
#: keys because, with both positions below the shift, integer keys sort
#: exactly like ``(row, col)`` tuples — the row-major order candidate
#: enumeration guarantees — while staying safely inside int64.
PAIR_POSITION_SHIFT = 1 << 31


def encode_position_pairs(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Pack dense-position pairs into int64 keys sorting in row-major order.

    Callers guarantee ``0 <= rows, cols < PAIR_POSITION_SHIFT`` (the delta
    engine enforces this on its node table once, not per call).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    return rows * PAIR_POSITION_SHIFT + cols


def decode_position_pairs(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_position_pairs`: ``(rows, cols)`` arrays."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys // PAIR_POSITION_SHIFT, keys % PAIR_POSITION_SHIFT


def canonical_pair(u: int, v: int) -> Pair:
    """Return the unordered pair ``(u, v)`` in canonical (sorted) order."""
    if u == v:
        raise ValueError(f"self-pair ({u}, {u}) is not a valid link candidate")
    return (u, v) if u < v else (v, u)


def pair_set(pairs: Iterable[tuple[int, int]]) -> set[Pair]:
    """Canonicalise an iterable of pairs into a set."""
    return {canonical_pair(u, v) for u, v in pairs}


def pair_array(pairs: Iterable[tuple[int, int]]) -> np.ndarray:
    """Return an ``(n, 2)`` int64 array of canonicalised pairs.

    The array form is what the vectorised scorers in :mod:`repro.metrics`
    consume; it preserves the iteration order of ``pairs``.
    """
    arr = np.asarray([canonical_pair(u, v) for u, v in pairs], dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    return arr
