"""Bring your own trace: evaluate predictors on an external edge stream.

Any timestamped edge list (``u v t`` per line — e.g. a SNAP temporal graph)
can drive the full pipeline.  This example writes a trace to disk, reads it
back, and runs the sequence evaluation plus a weighted-metric extension on
it — the complete path an external dataset would take.

Run with:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import LinkPredictor, datasets, snapshot_sequence
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.extensions.weighted import WeightedResourceAllocation, synthesize_weights
from repro.graph.io import read_trace, write_trace


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my_network.txt"

        # Stand-in for an external dataset: serialise one of the presets.
        write_trace(datasets.facebook_like(scale=0.4, seed=3), path)
        print(f"trace file: {path} ({path.stat().st_size} bytes)")

        trace = read_trace(path)
        print(f"loaded: {trace}")

        delta = trace.num_edges // 15
        result = LinkPredictor(metric="BRA", seed=0).evaluate_sequence(trace, delta)
        print()
        print(result.summary())

        # Extensions work on external traces too: synthesise tie strengths
        # and run the weighted RA variant on the last prediction step.
        snaps = snapshot_sequence(trace, delta, start=trace.num_edges // 3)
        prev, _, truth = list(prediction_steps(snaps))[-1]
        weights = synthesize_weights(prev, seed=0)
        ratios = [
            evaluate_step(
                WeightedResourceAllocation(weights, alpha=0.5), prev, truth, rng=s
            ).ratio
            for s in range(3)
        ]
        print(f"\nWRA (alpha=0.5) on the last step: {np.mean(ratios):.2f}x random")


if __name__ == "__main__":
    main()
