"""Quickstart: generate a trace, evaluate a predictor, recommend links.

Run with:  python examples/quickstart.py
"""

from repro import LinkPredictor, datasets, snapshot_sequence


def main() -> None:
    # 1. A synthetic Facebook-style trace (timestamped edge stream).
    trace = datasets.facebook_like(scale=0.5, seed=7)
    print(f"trace: {trace}")

    # 2. Evaluate a similarity metric the way the paper does: slice the
    #    trace into constant-delta snapshots and predict each step's new
    #    edges among existing nodes.
    predictor = LinkPredictor(metric="RA", seed=0)
    result = predictor.evaluate_sequence(trace, delta=trace.num_edges // 15)
    print()
    print(result.summary())

    # 3. Produce actual recommendations on the latest snapshot.
    snapshots = snapshot_sequence(trace, trace.num_edges // 15)
    latest = snapshots[-1]
    print()
    print("top-10 recommended links on the latest snapshot:")
    for u, v in predictor.suggest(latest, 10):
        print(f"  {u} -- {v}")


if __name__ == "__main__":
    main()
