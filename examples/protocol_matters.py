"""Why the evaluation protocol matters (Sections 2 and 4.1 of the paper).

Two methodological choices the paper defends, demonstrated empirically:

1. predicting *future* links is much harder than detecting *missing*
   (hidden) links — results from the older missing-link literature do not
   transfer;
2. AUC flatters everyone: metrics that differ by large factors in top-k
   accuracy sit within a few points of each other in AUC.

Run with:  python examples/protocol_matters.py
"""

import numpy as np

from repro import datasets, snapshot_sequence
from repro.eval.aucmode import auc_ranking
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.eval.missing import missing_vs_future

METRICS = ("RA", "BRA", "JC", "LP")


def main() -> None:
    trace = datasets.facebook_like(scale=0.5, seed=19)
    snapshots = snapshot_sequence(
        trace, trace.num_edges // 15, start=trace.num_edges // 3
    )
    prev, _, truth = list(prediction_steps(snapshots))[-1]

    print("== missing-link detection vs future-link prediction ==")
    print(f"{'metric':8s} {'missing':>9s} {'future':>9s}")
    for metric in METRICS:
        missing, future = [], []
        for seed in range(3):
            m, f = missing_vs_future(metric, prev, truth, rng=seed)
            missing.append(m)
            future.append(f)
        print(f"{metric:8s} {np.mean(missing):9.2f} {np.mean(future):9.2f}")
    print("(accuracy ratio; the hidden-edge task is consistently easier)\n")

    print("== AUC vs top-k accuracy ratio ==")
    auc = auc_ranking(METRICS, prev, truth, rng=0)
    print(f"{'metric':8s} {'AUC':>7s} {'ratio':>9s}")
    for metric in METRICS:
        ratio = np.mean(
            [evaluate_step(metric, prev, truth, rng=s).ratio for s in range(3)]
        )
        print(f"{metric:8s} {auc[metric]:7.3f} {ratio:9.2f}")
    print("(AUC judges the whole ranking and compresses the differences,")
    print(" which is why the paper evaluates the top-k instead)")


if __name__ == "__main__":
    main()
