"""Choosing a link prediction algorithm from network structure (Section 4.3).

Evaluates a panel of metrics on snapshots of all three synthetic networks,
then trains the paper's meta-classifiers:

- a multi-class decision tree that names the winning algorithm given a
  snapshot's structural features (Fig. 6), and
- per-algorithm binary trees answering "when is this algorithm within 90%
  of the best?".

Run with:  python examples/choosing_an_algorithm.py
"""

import numpy as np

from repro import datasets, snapshot_sequence
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.eval.meta import (
    FEATURE_NAMES,
    SnapshotRecord,
    fit_choice_tree,
    suitability_rules,
)
from repro.graph.stats import graph_features

METRICS = ("RA", "BRA", "Rescal", "PA", "JC")
NETWORKS = {
    "facebook": datasets.facebook_like,
    "renren": datasets.renren_like,
    "youtube": datasets.youtube_like,
}


def main() -> None:
    records = []
    for name, factory in NETWORKS.items():
        trace = factory(scale=0.4, seed=17)
        snapshots = snapshot_sequence(
            trace, trace.num_edges // 10, start=trace.num_edges // 3
        )
        steps = list(prediction_steps(snapshots))
        picked = np.linspace(0, len(steps) - 1, 4, dtype=int)
        for i in picked:
            prev, _, truth = steps[int(i)]
            ratios = {
                m: np.mean(
                    [evaluate_step(m, prev, truth, rng=s).ratio for s in range(2)]
                )
                for m in METRICS
            }
            records.append(
                SnapshotRecord(
                    network=name,
                    features=graph_features(
                        prev, clustering_sample=200, path_sample=25, seed=0
                    ),
                    ratios=ratios,
                )
            )
        winners = [r.winner for r in records if r.network == name]
        print(f"{name:10s} winners per snapshot: {winners}")

    print("\n== Fig. 6 style choice tree ==")
    tree, class_names = fit_choice_tree(records, max_depth=3)
    print(tree.export_text(list(FEATURE_NAMES), class_names))

    print("\n== per-algorithm suitability rules (within 90% of best) ==")
    rules = suitability_rules(records, METRICS)
    for algorithm, text in rules.items():
        print(f"-- {algorithm} --")
        print(text)


if __name__ == "__main__":
    main()
