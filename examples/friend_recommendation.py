"""Friend recommendation on a friendship network (the paper's Renren /
Facebook scenario).

Compares several similarity metrics on a growing friendship graph, shows
that the common-neighbour family leads (Section 4.2), then upgrades the
winner with a calibrated temporal filter (Section 6) and reports the
improvement.

Run with:  python examples/friend_recommendation.py
"""

import numpy as np

from repro import datasets, snapshot_sequence
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter

METRICS = ("CN", "JC", "RA", "BRA", "PA", "SP")


def main() -> None:
    trace = datasets.renren_like(scale=0.5, seed=11)
    print(f"friendship trace: {trace}")
    snapshots = snapshot_sequence(
        trace, trace.num_edges // 15, start=trace.num_edges // 3
    )
    steps = list(prediction_steps(snapshots))
    print(f"{len(snapshots)} snapshots, evaluating {len(steps)} prediction steps\n")

    # --- 1. Metric shoot-out (mini Figure 5) ------------------------------
    print("mean accuracy ratio over the sequence (higher = better):")
    means = {}
    for metric in METRICS:
        ratios = [
            evaluate_step(metric, prev, truth, rng=step).ratio
            for step, (prev, _, truth) in enumerate(steps)
        ]
        means[metric] = float(np.mean(ratios))
        print(f"  {metric:4s} {means[metric]:8.2f}x random")
    best = max(means, key=means.get)
    print(f"\nbest metric on this network: {best}")

    # --- 2. Temporal filtering (Section 6) --------------------------------
    cal_prev, _, cal_truth = steps[len(steps) // 2]
    params = calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
    filt = TemporalFilter(params)
    print(f"\ncalibrated filter: {params}")

    late_steps = steps[len(steps) // 2 + 1 :]
    base = np.mean(
        [evaluate_step(best, p, t, rng=i).ratio for i, (p, _, t) in enumerate(late_steps)]
    )
    filtered = np.mean(
        [
            evaluate_step(best, p, t, rng=i, pair_filter=filt).ratio
            for i, (p, _, t) in enumerate(late_steps)
        ]
    )
    prev_last = late_steps[-1][0]
    reduction = filt.reduction(prev_last, two_hop_pairs(prev_last))
    print(f"search space reduced by {100 * reduction:.0f}%")
    print(f"{best} accuracy ratio: {base:.2f} -> {filtered:.2f} with filtering")


if __name__ == "__main__":
    main()
