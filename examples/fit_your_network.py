"""Fit the growth model to an observed trace and generate a synthetic twin.

Given any timestamped edge stream, `fit_growth_config` measures the
mechanisms the growth engine models (triadic closure share and its trend,
newcomer share, initiator recency, assortative regime) and returns a
GrowthConfig whose synthetic output lands in the same structural
neighbourhood.  Useful for sharing a network's *shape* without sharing its
data, and for generating arbitrarily many "more of the same" test graphs.

Run with:  python examples/fit_your_network.py
"""

from repro import datasets
from repro.generators import fit_growth_config, measure_mechanisms
from repro.generators.base import generate_trace
from repro.graph import stats
from repro.graph.snapshots import Snapshot


def describe(label: str, trace) -> None:
    snapshot = Snapshot(trace, trace.num_edges)
    mechanisms = measure_mechanisms(trace)
    print(f"-- {label}")
    print(f"   nodes={snapshot.num_nodes} edges={snapshot.num_edges}")
    print(
        f"   triadic share={mechanisms['triadic_share']:.2f} "
        f"(first half {mechanisms['triadic_share_first_half']:.2f} -> "
        f"second half {mechanisms['triadic_share_second_half']:.2f})"
    )
    print(
        f"   clustering={stats.average_clustering(snapshot, sample_size=300, seed=0):.3f} "
        f"assortativity={stats.degree_assortativity(snapshot):+.3f}"
    )


def main() -> None:
    # Stand-in for "your network": one of the presets.  Any trace loaded
    # with repro.graph.io.read_trace works the same way.
    observed = datasets.renren_like(scale=0.35, seed=23)
    describe("observed network", observed)

    config = fit_growth_config(observed, name="twin")
    print(
        f"\nfitted config: triadic {config.triadic_prob:.2f}"
        f" -> {config.triadic_prob_final:.2f},"
        f" newcomers {config.newcomer_prob:.2f},"
        f" recency {config.recent_initiator_prob:.2f},"
        f" assortative matching {config.assortative_matching}"
    )

    twin = generate_trace(config, seed=99)
    print()
    describe("synthetic twin", twin)


if __name__ == "__main__":
    main()
