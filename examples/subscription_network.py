"""Link prediction on a subscription network (the paper's YouTube scenario).

Subscription graphs look nothing like friendship graphs: negative degree
assortativity, supernode creators, most users with a handful of edges.
This example shows how that structure flips the metric ranking — latent-
factor RESCAL shines while Jaccard / shortest-path collapse — and inspects
RESCAL's latent node weights to see the supernode concentration the paper
describes in Section 4.2.

Run with:  python examples/subscription_network.py
"""

import numpy as np

from repro import datasets, snapshot_sequence
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.graph import stats
from repro.metrics.base import get_metric

METRICS = ("Rescal", "BRA", "PA", "JC", "SP")


def main() -> None:
    trace = datasets.youtube_like(scale=0.6, seed=9)
    snapshots = snapshot_sequence(
        trace, trace.num_edges // 15, start=trace.num_edges // 3
    )
    last = snapshots[-1]
    print(f"subscription trace: {trace}")
    print(
        f"assortativity = {stats.degree_assortativity(last):+.3f} "
        f"(negative: subscribers attach to supernodes)"
    )
    degrees = last.degree_array()
    print(
        f"degree <= 3 for {100 * np.mean(degrees <= 3):.0f}% of nodes; "
        f"max degree {int(degrees.max())} vs mean {degrees.mean():.1f}\n"
    )

    # --- metric shoot-out --------------------------------------------------
    steps = list(prediction_steps(snapshots))
    print("mean accuracy ratio over the sequence:")
    for metric in METRICS:
        ratios = [
            evaluate_step(metric, prev, truth, rng=i).ratio
            for i, (prev, _, truth) in enumerate(steps)
        ]
        print(f"  {metric:7s} {np.mean(ratios):8.2f}x random")

    # --- RESCAL's latent view ----------------------------------------------
    rescal = get_metric("Rescal", rank=16).fit(last)
    weights = rescal.node_weights()
    order = np.argsort(-degrees)
    top = order[: max(1, len(order) // 100)]
    print(
        f"\nRESCAL latent weight, top-1% degree nodes vs median: "
        f"{weights[top].mean():.3f} vs {np.median(weights):.3f}"
    )
    print("(supernodes dominate the latent space, which is why RESCAL")
    print(" captures the negative assortativity best — Section 4.2)")


if __name__ == "__main__":
    main()
