"""Temporal filters end-to-end (Section 6 of the paper).

1. measure the temporal separations between positive and negative pairs
   (Figs. 13-15),
2. calibrate a 4-criterion temporal filter from one observed step,
3. apply it to metric-based and classification-based predictors,
4. compare against the time-series baseline (Fig. 16).

Run with:  python examples/temporal_filtering.py
"""

import numpy as np

from repro import datasets, snapshot_sequence
from repro.classify import ClassificationPredictor, sampled_instance
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import (
    TemporalFilter,
    TimeSeriesMetric,
    calibrate_filter,
    pair_activity,
)
from repro.temporal.calibrate import positive_negative_pairs


def main() -> None:
    trace = datasets.facebook_like(scale=0.6, seed=21)
    snapshots = snapshot_sequence(
        trace, trace.num_edges // 15, start=trace.num_edges // 3
    )
    steps = list(prediction_steps(snapshots))

    # --- 1. temporal separations (Figs. 13-15) ------------------------------
    prev, _, truth = steps[len(steps) // 2]
    candidates = two_hop_pairs(prev)
    positives, negatives = positive_negative_pairs(prev, truth, candidates, rng=0)
    window = max(1.0, (prev.time - trace.start_time) / 10)
    pos = pair_activity(prev, positives, window=window)
    neg = pair_activity(prev, negatives, window=window)
    print("temporal separation (positive vs negative candidate pairs):")
    print(
        f"  active idle (median):   {np.median(pos.active_idle):6.2f}d "
        f"vs {np.median(neg.active_idle):6.2f}d"
    )
    print(
        f"  recent edges (mean):    {np.mean(pos.recent_edges):6.2f}  "
        f"vs {np.mean(neg.recent_edges):6.2f}"
    )
    pos_gap = pos.cn_gap[np.isfinite(pos.cn_gap)]
    neg_gap = neg.cn_gap[np.isfinite(neg.cn_gap)]
    print(
        f"  CN time gap (median):   {np.median(pos_gap):6.2f}d "
        f"vs {np.median(neg_gap):6.2f}d"
    )

    # --- 2. calibrate ---------------------------------------------------------
    params = calibrate_filter(prev, truth, candidates, rng=0)
    filt = TemporalFilter(params)
    print(f"\ncalibrated thresholds: {params}")
    last_prev = steps[-1][0]
    print(
        f"search-space reduction on the last snapshot: "
        f"{100 * filt.reduction(last_prev, two_hop_pairs(last_prev)):.0f}%"
    )

    # --- 3. apply to predictors ------------------------------------------------
    late = steps[len(steps) // 2 + 1 :]
    print("\nmetric accuracy ratio, basic vs filtered vs time-model (MA):")
    for metric in ("RA", "JC", "SP"):
        basic, filtered, timed = [], [], []
        for i, (p, _, t) in enumerate(late):
            basic.append(evaluate_step(metric, p, t, rng=i).ratio)
            filtered.append(evaluate_step(metric, p, t, rng=i, pair_filter=filt).ratio)
            ts = TimeSeriesMetric(metric, "ma", points=3)
            timed.append(evaluate_step(ts, p, t, rng=i).ratio)
        print(
            f"  {metric:4s} basic={np.mean(basic):6.2f} "
            f"filtered={np.mean(filtered):6.2f} time-model={np.mean(timed):6.2f}"
        )

    # --- 4. the classifier benefits too ----------------------------------------
    inst = sampled_instance(snapshots[-7], snapshots[-4], snapshots[-1])
    predictor = ClassificationPredictor("SVM", theta=1 / 100, seed=0)
    predictor.train(inst.train_view, inst.label_view)
    base = predictor.predict_step(inst.test_view, inst.truth, rng=0).ratio
    with_filter = predictor.predict_step(
        inst.test_view, inst.truth, rng=0, pair_filter=filt
    ).ratio
    print(f"\nSVM accuracy ratio: {base:.2f} -> {with_filter:.2f} with filtering")


if __name__ == "__main__":
    main()
