"""Shared result schema + writer for the repo-root ``BENCH_*.json`` files.

Every perf-trajectory benchmark (``bench_core_scaling.py``,
``bench_ingest.py``, ``bench_telemetry_overhead.py``) serialises its
report through :func:`write_report`, so the trajectory files share one
validated shape instead of drifting per-bench conventions:

``{"bench": <name>, "schema": 1, "cpus": <os.cpu_count()>, "sizes": [...]}``

where every entry of ``sizes`` is a JSON-safe dict carrying a unique
string ``label``.  Validation happens before anything touches disk —
a benchmark that builds a malformed report fails loudly instead of
committing a trajectory file the comparison tooling cannot read.

The writer also owns the human-readable side: one line per size entry
into ``benchmarks/results/<bench>.txt`` when the caller supplies a
formatter.  Writes are atomic (tmp + ``os.replace``) so an interrupted
benchmark never leaves a half-written trajectory file behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: version of the shared BENCH_*.json shape; bump on breaking changes.
BENCH_SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"


class BenchReportError(ValueError):
    """A benchmark produced a report that violates the shared schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchReportError(message)


def build_report(bench: str, sizes: "list[dict]") -> dict:
    """Assemble and validate the canonical report envelope."""
    report = {
        "bench": bench,
        "schema": BENCH_SCHEMA_VERSION,
        "cpus": os.cpu_count(),
        "sizes": list(sizes),
    }
    validate_report(report)
    return report


def validate_report(report: dict) -> dict:
    """Check a report against the shared schema; returns it unchanged."""
    _require(isinstance(report, dict), "report must be a dict")
    missing = {"bench", "schema", "cpus", "sizes"} - set(report)
    _require(not missing, f"report missing keys: {sorted(missing)}")
    _require(
        isinstance(report["bench"], str) and bool(report["bench"]),
        "report['bench'] must be a non-empty string",
    )
    _require(
        report["schema"] == BENCH_SCHEMA_VERSION,
        f"report['schema'] must be {BENCH_SCHEMA_VERSION}, "
        f"got {report['schema']!r}",
    )
    _require(
        isinstance(report["sizes"], list) and len(report["sizes"]) > 0,
        "report['sizes'] must be a non-empty list",
    )
    labels = []
    for index, entry in enumerate(report["sizes"]):
        _require(
            isinstance(entry, dict),
            f"sizes[{index}] must be a dict, got {type(entry).__name__}",
        )
        label = entry.get("label")
        _require(
            isinstance(label, str) and bool(label),
            f"sizes[{index}] needs a non-empty string 'label'",
        )
        labels.append(label)
    _require(
        len(labels) == len(set(labels)),
        f"size labels must be unique, got {labels}",
    )
    try:
        json.dumps(report, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise BenchReportError(f"report is not JSON-safe: {exc}") from None
    return report


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def write_report(report: dict, line_formatter=None, json_stem: "str | None" = None) -> Path:
    """Validate + write ``BENCH_<stem>.json`` at the repo root.

    ``json_stem`` defaults to the bench name (``BENCH_core.json`` keeps
    its historical stem while carrying ``bench: "core_scaling"``).
    ``line_formatter(entry) -> str``, when given, also renders one line
    per size entry into ``benchmarks/results/<bench>.txt``.
    """
    validate_report(report)
    path = REPO_ROOT / f"BENCH_{json_stem or report['bench']}.json"
    _atomic_write(path, json.dumps(report, indent=2) + "\n")
    if line_formatter is not None:
        RESULTS_DIR.mkdir(exist_ok=True)
        lines = [line_formatter(entry) for entry in report["sizes"]]
        _atomic_write(
            RESULTS_DIR / f"{report['bench']}.txt", "\n".join(lines) + "\n"
        )
    print(f"wrote {path}")
    return path
