"""Figure 11: metric-based vs classification-based prediction on the same
candidate pair universe.

For every consecutive snapshot triple the bench builds the paper's
instance (snowball-sampled on YouTube, full population on Facebook — the
paper's own p=100% setting there), evaluates every metric and the SVM on
the *same* test universe, and averages over the sequence.

Shape targets from the paper:
- with a well-chosen theta, SVM performs as well as or better than the
  best metric-based algorithm on every network;
- RA / BRA remain consistently strong among the metrics.
"""

import numpy as np

from benchmarks.conftest import SEED, write_result
from repro.classify import ClassificationPredictor, sampled_instance
from repro.eval.experiment import evaluate_step
from repro.metrics.candidates import all_nonedge_pairs

METRICS = ("JC", "BCN", "BAA", "BRA", "LP", "LRW", "PPR", "PA", "Rescal")
THETAS = (1 / 50, 1 / 100, 1 / 1000)
FRACTIONS = {"facebook": 1.0, "youtube": 0.65}


def build_instances(data, fraction, count=4, stride=3):
    """Per-triple instances over the tail of the snapshot sequence.

    ``stride`` widens both the training-label and the ground-truth horizon
    to ``stride`` snapshot deltas — the same scale correction Table 6's
    fixtures use (single-delta truths at this scale have single-digit hit
    counts and drown in Poisson noise).
    """
    snaps = data.snapshots
    triples = [
        (snaps[i - 2 * stride], snaps[i - stride], snaps[i])
        for i in range(len(snaps) - 1, 2 * stride - 1, -stride)
    ][:count]
    return [
        sampled_instance(g2, g1, g0, fraction=fraction, rng=SEED)
        for g2, g1, g0 in triples
        if len(g1.node_list) > 10
    ]


def compare(instances, seeds=(0, 1)):
    metric_ratios = {m: [] for m in METRICS}
    svm_by_theta = {theta: [] for theta in THETAS}
    for instance in instances:
        if instance.k == 0:
            continue
        candidates = all_nonedge_pairs(instance.test_view)
        for metric in METRICS:
            for seed in seeds:
                metric_ratios[metric].append(
                    evaluate_step(
                        metric,
                        instance.test_view,
                        instance.truth,
                        rng=seed,
                        candidates=candidates,
                    ).ratio
                )
        for theta in THETAS:
            for seed in seeds:
                predictor = ClassificationPredictor("SVM", theta=theta, seed=seed)
                svm_by_theta[theta].append(
                    predictor.evaluate_instance(instance, rng=seed).ratio
                )
    metrics_mean = {m: float(np.mean(v)) for m, v in metric_ratios.items()}
    # "With a well-chosen theta": the best undersampling ratio per network.
    svm = max(float(np.mean(v)) for v in svm_by_theta.values())
    return metrics_mean, svm


def test_fig11_metric_vs_svm(networks, benchmark):
    def run():
        out = {}
        for name, fraction in FRACTIONS.items():
            instances = build_instances(networks[name], fraction)
            out[name] = compare(instances)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, (metric_ratios, svm) in results.items():
        ranked = sorted(metric_ratios.items(), key=lambda kv: kv[1])
        row = "  ".join(f"{m}:{v:.1f}" for m, v in ranked)
        lines.append(f"{name:10s} metrics: {row}")
        lines.append(f"{name:10s} SVM: {svm:.1f}")
    write_result("fig11_metric_vs_svm", "\n".join(lines))

    for name, (metric_ratios, svm) in results.items():
        best_metric = max(metric_ratios.values())
        # SVM is competitive with the best single metric (paper: as good
        # as or better; allow 60% at this noisy scale).
        assert svm >= 0.6 * best_metric, (name, svm, metric_ratios)


def test_fig11_ra_family_consistently_good(networks, benchmark):
    """RA/BRA provide 'reasonable alternatives' on every network."""
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    for name, fraction in FRACTIONS.items():
        instances = build_instances(networks[name], fraction, count=3)
        ratios = {m: [] for m in METRICS}
        for instance in instances:
            if instance.k == 0:
                continue
            candidates = all_nonedge_pairs(instance.test_view)
            for m in METRICS:
                ratios[m].append(
                    evaluate_step(
                        m,
                        instance.test_view,
                        instance.truth,
                        rng=0,
                        candidates=candidates,
                    ).ratio
                )
        means = {m: float(np.mean(v)) for m, v in ratios.items() if v}
        best = max(means.values())
        if best > 0:
            assert max(means["BRA"], means.get("BCN", 0.0)) >= 0.2 * best, (
                name,
                means,
            )
