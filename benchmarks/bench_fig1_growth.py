"""Figure 1: daily new nodes and edges in the three networks.

The paper's traces all grow exponentially; the bench regenerates the daily
new-node / new-edge series and checks exponential shape (later intervals
add more than earlier ones) plus the Renren > Facebook growth-rate
ordering.
"""

import numpy as np

from benchmarks.conftest import write_result


def daily_series(trace, buckets=10):
    """New nodes and edges per time bucket over the trace span."""
    span = trace.end_time - trace.start_time
    edges_t = np.asarray([t for _, _, t in trace.edges()])
    arrivals = np.asarray(
        [trace.node_arrival_time(u) for u in trace.nodes()]
    )
    bins = np.linspace(trace.start_time, trace.end_time + 1e-9, buckets + 1)
    new_edges, _ = np.histogram(edges_t, bins=bins)
    new_nodes, _ = np.histogram(arrivals, bins=bins)
    rate = span / buckets
    return new_nodes / rate, new_edges / rate  # per-day rates


def test_fig1_growth_series(networks, benchmark):
    series = benchmark(
        lambda: {name: daily_series(d.trace) for name, d in networks.items()}
    )
    lines = ["network    bucket-rates (edges/day)"]
    for name, (nodes, edges) in series.items():
        formatted = " ".join(f"{e:8.1f}" for e in edges)
        lines.append(f"{name:10s} {formatted}")
    write_result("fig1_growth", "\n".join(lines))

    for name, (nodes, edges) in series.items():
        # Exponential growth: the last quarter outpaces the first quarter.
        assert edges[-2:].mean() > edges[:2].mean(), name
        assert nodes[-2:].mean() >= nodes[:2].mean() * 0.5, name


def test_fig1_renren_fastest(networks, benchmark):
    def peak_rates():
        return {
            name: daily_series(d.trace)[1].max() for name, d in networks.items()
        }

    rates = benchmark(peak_rates)
    # Renren is the fastest-growing network in the paper's Figure 1.
    assert rates["renren"] > rates["facebook"]
