"""Trace-ingestion benchmark: legacy per-line loader vs the block reader.

Times and memory-profiles loading a clean ``u v t`` trace file through

- an inline reimplementation of the seed loader — one Python tuple per
  line, a full-file ``sorted()`` over those tuples, then per-event
  ``TemporalGraph.add_edge`` via ``from_stream``; and
- the hardened pipeline (:func:`repro.ingest.load_trace`) — fixed-size
  line blocks parsed straight into NumPy columns, one vectorised stable
  ``argsort``, and the validated-columns fast constructor.

Both sides are checked column-for-column byte-identical before any
number is trusted, and the new path's ``tracemalloc`` peak is asserted
strictly below the legacy peak (the "no per-line tuple mountain"
guarantee).  Results go to ``BENCH_ingest.json`` at the repo root and
``benchmarks/results/ingest.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py          # 150k + 500k events, writes BENCH_ingest.json
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke  # ~60k events only, no JSON (CI)
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
import tracemalloc
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.graph.dyngraph import TemporalGraph
from repro.ingest import load_trace

#: (label, number of events).
SIZES = (("medium", 150_000), ("large", 500_000))
SMOKE_SIZES = (("smoke", 60_000),)


def synthesize_trace_file(path: Path, n_events: int, seed: int = 7) -> None:
    """Write a clean trace: unique canonical pairs, sorted repr times."""
    rng = np.random.default_rng(seed)
    n_nodes = max(64, n_events // 8)
    pairs = np.empty((0, 2), dtype=np.int64)
    while len(pairs) < n_events:
        draw = rng.integers(0, n_nodes, size=(2 * n_events, 2), dtype=np.int64)
        draw = draw[draw[:, 0] != draw[:, 1]]
        lo = np.minimum(draw[:, 0], draw[:, 1])
        hi = np.maximum(draw[:, 0], draw[:, 1])
        pairs = np.unique(np.stack((lo, hi), axis=1), axis=0)
    keep = rng.permutation(len(pairs))[:n_events]
    pairs = pairs[keep]
    times = np.sort(rng.exponential(scale=0.01, size=n_events).cumsum())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro-trace v2\n# u v t(days)\n")
        fh.writelines(
            f"{u} {v} {t!r}\n"
            for u, v, t in zip(
                pairs[:, 0].tolist(), pairs[:, 1].tolist(), times.tolist()
            )
        )


# ---------------------------------------------------------------------------
# Legacy loader (inline reimplementation of the seed read_trace)
# ---------------------------------------------------------------------------
def legacy_read_trace(path: Path) -> TemporalGraph:
    """Per-line tuples, full-file sorted(), per-event add_edge."""

    def iter_lines():
        with open(path, encoding="ascii") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) == 2:
                    u, v = parts
                    yield int(u), int(v), float(lineno)
                elif len(parts) == 3:
                    u, v, t = parts
                    yield int(u), int(v), float(t)
                else:
                    raise ValueError(
                        f"{path}:{lineno}: expected 'u v [t]', got {line!r}"
                    )

    events = sorted(iter_lines(), key=lambda e: e[2])
    return TemporalGraph.from_stream(events)


def _measure(fn) -> tuple[TemporalGraph, float, int]:
    """(result, wall seconds, tracemalloc peak bytes) for a cold load.

    Timing and memory profiling run as separate loads: tracemalloc's
    per-allocation hook would otherwise dominate the timed region and
    skew it against whichever side allocates more objects.
    """
    elapsed = float("inf")
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - started)
    gc.collect()
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def bench_size(label: str, n_events: int, workdir: Path) -> dict:
    trace_path = workdir / f"trace_{label}.txt"
    synthesize_trace_file(trace_path, n_events)

    # Each side is measured with the other side's graph already freed:
    # a live multi-million-object graph would make every cyclic-GC pass
    # during the other loader's timed run scan it, doubling wall time.
    new_graph, new_s, new_peak = _measure(lambda: load_trace(trace_path))
    new_cols = [col.copy() for col in new_graph.columns()]
    report = new_graph.ingest_report
    assert report.clean and report.events_accepted == n_events
    del new_graph

    legacy_graph, legacy_s, legacy_peak = _measure(
        lambda: legacy_read_trace(trace_path)
    )
    legacy_cols = [col.copy() for col in legacy_graph.columns()]
    del legacy_graph

    # Parity before any number is trusted: byte-identical columns.
    for old, new in zip(legacy_cols, new_cols):
        assert old.tobytes() == new.tobytes(), "ingest parity broke"

    # The acceptance bar: block parsing must beat the per-line tuple
    # mountain on peak heap, at every size including the smoke entry.
    assert new_peak < legacy_peak, (
        f"ingest peak regression: new {new_peak} >= legacy {legacy_peak}"
    )
    return {
        "label": label,
        "events": n_events,
        "file_bytes": trace_path.stat().st_size,
        "legacy_s": round(legacy_s, 4),
        "ingest_s": round(new_s, 4),
        "speedup": round(legacy_s / new_s, 2),
        "legacy_peak_bytes": int(legacy_peak),
        "ingest_peak_bytes": int(new_peak),
        "peak_reduction": round(legacy_peak / max(1, new_peak), 2),
    }


def _summary_line(e: dict) -> str:
    return (
        f"{e['label']:>6} (E={e['events']}): load {e['speedup']}x faster, "
        f"peak mem {e['peak_reduction']}x smaller "
        f"({e['legacy_peak_bytes']} -> {e['ingest_peak_bytes']} bytes)"
    )


def run(sizes, write_json: bool) -> dict:
    entries = []
    with TemporaryDirectory() as tmp:
        for label, n_events in sizes:
            entry = bench_size(label, n_events, Path(tmp))
            entries.append(entry)
            print(
                f"[{label}] E={entry['events']}: "
                f"legacy {entry['legacy_s']}s / {entry['legacy_peak_bytes']} B peak, "
                f"ingest {entry['ingest_s']}s / {entry['ingest_peak_bytes']} B peak "
                f"({entry['speedup']}x faster, {entry['peak_reduction']}x less memory)"
            )

    report = build_report("ingest", entries)
    if write_json:
        write_report(report, line_formatter=_summary_line)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="~60k events only, parity-checked, no BENCH_ingest.json rewrite",
    )
    args = parser.parse_args()
    run(SMOKE_SIZES if args.smoke else SIZES, write_json=not args.smoke)


if __name__ == "__main__":
    main()
