"""Trace-ingestion benchmark: legacy per-line loader vs the block reader.

Times and memory-profiles loading a clean ``u v t`` trace file through

- an inline reimplementation of the seed loader — one Python tuple per
  line, a full-file ``sorted()`` over those tuples, then per-event
  ``TemporalGraph.add_edge`` via ``from_stream``; and
- the hardened pipeline (:func:`repro.ingest.load_trace`) — fixed-size
  line blocks parsed straight into NumPy columns, one vectorised stable
  ``argsort``, and the validated-columns fast constructor.

Both sides are checked column-for-column byte-identical before any
number is trusted, and the new path's ``tracemalloc`` peak is asserted
strictly below the legacy peak (the "no per-line tuple mountain"
guarantee).

A second leg measures the sharded parallel path
(:mod:`repro.ingest.shard`) at ``jobs`` in {1, 2, 4} over a 1M-event
trace, asserting byte-identical columns/checksum against the serial
pipeline for **every** policy (strict / repair / quarantine) before
timing anything.  On a multi-core host the 4-worker row is expected to
clear 1.5x over serial (chunk parsing dominates and is embarrassingly
parallel; the planner's byte scan is the serial fraction); on the
single-core container used for the committed run the pool only adds
process spin-up and IPC, so the rows document overhead, not speedup —
re-run on multi-core hardware to regenerate the scaling note (same
caveat as the parallel-runner bench, see EXPERIMENTS.md).

Results go to ``BENCH_ingest.json`` at the repo root and
``benchmarks/results/ingest.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py          # 150k + 500k + 1M-shard rows, writes BENCH_ingest.json
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke  # ~60k events only, no JSON (CI)
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
import tracemalloc
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.graph.dyngraph import TemporalGraph
from repro.ingest import IngestPolicy, load_trace, scan_trace
from repro.ingest.shard import scan_shards

#: (label, number of events).
SIZES = (("medium", 150_000), ("large", 500_000))
SMOKE_SIZES = (("smoke", 60_000),)

#: events and worker counts for the sharded-scaling leg.
SHARD_EVENTS = 1_000_000
SMOKE_SHARD_EVENTS = 60_000
SHARD_JOBS = (1, 2, 4)


def synthesize_trace_file(path: Path, n_events: int, seed: int = 7) -> None:
    """Write a clean trace: unique canonical pairs, sorted repr times."""
    rng = np.random.default_rng(seed)
    n_nodes = max(64, n_events // 8)
    pairs = np.empty((0, 2), dtype=np.int64)
    while len(pairs) < n_events:
        draw = rng.integers(0, n_nodes, size=(2 * n_events, 2), dtype=np.int64)
        draw = draw[draw[:, 0] != draw[:, 1]]
        lo = np.minimum(draw[:, 0], draw[:, 1])
        hi = np.maximum(draw[:, 0], draw[:, 1])
        pairs = np.unique(np.stack((lo, hi), axis=1), axis=0)
    keep = rng.permutation(len(pairs))[:n_events]
    pairs = pairs[keep]
    times = np.sort(rng.exponential(scale=0.01, size=n_events).cumsum())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro-trace v2\n# u v t(days)\n")
        fh.writelines(
            f"{u} {v} {t!r}\n"
            for u, v, t in zip(
                pairs[:, 0].tolist(), pairs[:, 1].tolist(), times.tolist()
            )
        )


# ---------------------------------------------------------------------------
# Legacy loader (inline reimplementation of the seed read_trace)
# ---------------------------------------------------------------------------
def legacy_read_trace(path: Path) -> TemporalGraph:
    """Per-line tuples, full-file sorted(), per-event add_edge."""

    def iter_lines():
        with open(path, encoding="ascii") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) == 2:
                    u, v = parts
                    yield int(u), int(v), float(lineno)
                elif len(parts) == 3:
                    u, v, t = parts
                    yield int(u), int(v), float(t)
                else:
                    raise ValueError(
                        f"{path}:{lineno}: expected 'u v [t]', got {line!r}"
                    )

    events = sorted(iter_lines(), key=lambda e: e[2])
    return TemporalGraph.from_stream(events)


def _measure(fn) -> tuple[TemporalGraph, float, int]:
    """(result, wall seconds, tracemalloc peak bytes) for a cold load.

    Timing and memory profiling run as separate loads: tracemalloc's
    per-allocation hook would otherwise dominate the timed region and
    skew it against whichever side allocates more objects.
    """
    elapsed = float("inf")
    for _ in range(3):
        gc.collect()
        started = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - started)
    gc.collect()
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def bench_size(label: str, n_events: int, workdir: Path) -> dict:
    trace_path = workdir / f"trace_{label}.txt"
    synthesize_trace_file(trace_path, n_events)

    # Each side is measured with the other side's graph already freed:
    # a live multi-million-object graph would make every cyclic-GC pass
    # during the other loader's timed run scan it, doubling wall time.
    new_graph, new_s, new_peak = _measure(lambda: load_trace(trace_path))
    new_cols = [col.copy() for col in new_graph.columns()]
    report = new_graph.ingest_report
    assert report.clean and report.events_accepted == n_events
    del new_graph

    legacy_graph, legacy_s, legacy_peak = _measure(
        lambda: legacy_read_trace(trace_path)
    )
    legacy_cols = [col.copy() for col in legacy_graph.columns()]
    del legacy_graph

    # Parity before any number is trusted: byte-identical columns.
    for old, new in zip(legacy_cols, new_cols):
        assert old.tobytes() == new.tobytes(), "ingest parity broke"

    # The acceptance bar: block parsing must beat the per-line tuple
    # mountain on peak heap, at every size including the smoke entry.
    assert new_peak < legacy_peak, (
        f"ingest peak regression: new {new_peak} >= legacy {legacy_peak}"
    )
    return {
        "label": label,
        "events": n_events,
        "file_bytes": trace_path.stat().st_size,
        "legacy_s": round(legacy_s, 4),
        "ingest_s": round(new_s, 4),
        "speedup": round(legacy_s / new_s, 2),
        "legacy_peak_bytes": int(legacy_peak),
        "ingest_peak_bytes": int(new_peak),
        "peak_reduction": round(legacy_peak / max(1, new_peak), 2),
    }


def _assert_shard_policy_parity(trace_path: Path, jobs: int) -> None:
    """Bitwise serial/sharded equivalence for every policy, in-bench."""
    for policy_name in ("strict", "repair", "quarantine"):
        policy = IngestPolicy.from_string(policy_name)
        su, sv, st_, serial_report = scan_trace(trace_path, policy=policy)
        pu, pv, pt, shard_report = scan_shards(
            [trace_path], policy=policy, jobs=jobs,
            target_shards=max(4, 2 * jobs),
        )
        assert pu.tobytes() == su.tobytes(), f"{policy_name}: u diverged"
        assert pv.tobytes() == sv.tobytes(), f"{policy_name}: v diverged"
        assert pt.tobytes() == st_.tobytes(), f"{policy_name}: t diverged"
        assert shard_report.checksum == serial_report.checksum, policy_name
        assert shard_report.flagged == serial_report.flagged, policy_name
        assert shard_report.quarantined == serial_report.quarantined, policy_name


def bench_shard_scaling(n_events: int, workdir: Path) -> "list[dict]":
    """Worker-scaling rows: serial pipeline vs scan_shards(jobs=N)."""
    trace_path = workdir / "trace_shard.txt"
    synthesize_trace_file(trace_path, n_events)
    _assert_shard_policy_parity(trace_path, jobs=max(SHARD_JOBS))

    serial_s = float("inf")
    for _ in range(2):
        gc.collect()
        started = time.perf_counter()
        ref = scan_trace(trace_path)
        serial_s = min(serial_s, time.perf_counter() - started)
    ref_t, ref_report = ref[2], ref[3]
    assert ref_report.events_accepted == n_events

    entries = []
    label_k = f"{n_events // 1000}k"
    for jobs in SHARD_JOBS:
        gc.collect()
        elapsed = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            us, vs, ts, report = scan_shards(
                [trace_path], jobs=jobs, target_shards=max(4, 2 * jobs)
            )
            elapsed = min(elapsed, time.perf_counter() - started)
        assert report.checksum == ref_report.checksum
        assert ts.tobytes() == ref_t.tobytes()
        workers = [
            row for row in report.shard_timings if row["shard"] != "plan"
        ]
        plan_s = sum(
            row["seconds"] for row in report.shard_timings
            if row["shard"] == "plan"
        )
        entries.append({
            "label": f"shard_{label_k}_jobs{jobs}",
            "events": n_events,
            "jobs": jobs,
            "shards": len(workers),
            "serial_s": round(serial_s, 4),
            "sharded_s": round(elapsed, 4),
            "speedup_vs_serial": round(serial_s / elapsed, 2),
            "plan_s": round(plan_s, 4),
            "worker_s_sum": round(sum(r["seconds"] for r in workers), 4),
        })
    return entries


def _summary_line(e: dict) -> str:
    if "jobs" in e:
        return (
            f"{e['label']:>18} (E={e['events']}, jobs={e['jobs']}, "
            f"{e['shards']} shards): serial {e['serial_s']}s -> "
            f"sharded {e['sharded_s']}s ({e['speedup_vs_serial']}x)"
        )
    return (
        f"{e['label']:>6} (E={e['events']}): load {e['speedup']}x faster, "
        f"peak mem {e['peak_reduction']}x smaller "
        f"({e['legacy_peak_bytes']} -> {e['ingest_peak_bytes']} bytes)"
    )


def run(sizes, shard_events: int, write_json: bool) -> dict:
    entries = []
    with TemporaryDirectory() as tmp:
        for label, n_events in sizes:
            entry = bench_size(label, n_events, Path(tmp))
            entries.append(entry)
            print(
                f"[{label}] E={entry['events']}: "
                f"legacy {entry['legacy_s']}s / {entry['legacy_peak_bytes']} B peak, "
                f"ingest {entry['ingest_s']}s / {entry['ingest_peak_bytes']} B peak "
                f"({entry['speedup']}x faster, {entry['peak_reduction']}x less memory)"
            )
        for entry in bench_shard_scaling(shard_events, Path(tmp)):
            entries.append(entry)
            print(
                f"[{entry['label']}] jobs={entry['jobs']} over "
                f"{entry['shards']} shards: serial {entry['serial_s']}s -> "
                f"sharded {entry['sharded_s']}s "
                f"({entry['speedup_vs_serial']}x, plan {entry['plan_s']}s)"
            )

    report = build_report("ingest", entries)
    if write_json:
        write_report(report, line_formatter=_summary_line)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="~60k events only, parity-checked, no BENCH_ingest.json rewrite",
    )
    args = parser.parse_args()
    run(
        SMOKE_SIZES if args.smoke else SIZES,
        shard_events=SMOKE_SHARD_EVENTS if args.smoke else SHARD_EVENTS,
        write_json=not args.smoke,
    )


if __name__ == "__main__":
    main()
