"""Delta-engine benchmark: incremental apply + materialize vs full rebuild.

For each trace size, the stream is split at 90% and the remaining 10% is
fed in batches of several sizes (fractions of the full stream).  Per
batch, both worlds end at the same state and answer the same queries —
candidate enumeration plus CN/AA/RA fit + score over the full candidate
set — but get there differently:

- **delta** — ``DeltaGraph.apply(batch)`` + ``materialize()`` (incremental
  column/index/CSR patching, dirty-region score refresh);
- **rebuild** — ``TemporalGraph.from_columns(validated=True)`` over the
  whole prefix, a fresh ``Snapshot``, and cold metric caches, exactly what
  a non-incremental pipeline pays per arriving batch.

Every measured batch is parity-checked byte-for-byte (pairs and scores via
``tobytes``) before its timing is trusted, and the full (non ``--smoke``)
run asserts the acceptance floor: delta beats rebuild by >= 5x for small
batches on the largest size, asserted at the smallest measured fraction
(0.1% of the stream).  The sweep deliberately extends to 1% and 5% to
show the crossover: because materialised snapshots must be byte-identical
to rebuilds, a candidate score may only be served warm if it is exactly
the value a rebuild would compute, and the dirty region (pairs whose CN
set or a common neighbour's degree changed) grows superlinearly with the
batch — at 1% of the stream, 45-75% of all candidate scores genuinely
change on these presets, so the delta engine converges toward rebuild
cost there by necessity, not by implementation slack.  Results go to
``BENCH_delta.json`` at the repo root and ``benchmarks/results/delta.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_delta.py          # full, writes BENCH_delta.json
    PYTHONPATH=src python benchmarks/bench_delta.py --smoke  # smallest size only, no JSON (CI)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.generators import presets
from repro.graph.delta import DeltaGraph
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot
from repro.metrics.base import get_metric
from repro.metrics.candidates import two_hop_pairs

#: (label, preset, scale) — the dense friendship trace at two sizes plus
#: the sparse, hub-heavy subscription trace as the largest graph (same
#: precedent as bench_core_scaling's "large-sparse" entry).
SIZES = (
    ("small", "facebook", 0.25),
    ("medium", "facebook", 1.0),
    ("large-sparse", "youtube", 2.0),
)

#: batch sizes as fractions of the full stream.  All are <= 5% of the
#: stream; the smallest is the regime the acceptance floor covers, the
#: larger two document the crossover where most scores genuinely change.
FRACTIONS = (0.001, 0.01, 0.05)

#: the fraction the >= 5x floor is asserted at (see module docstring).
FLOOR_FRACTION = 0.001

#: warm-start point: the delta engine (and the rebuild baseline) begin
#: with this share of the stream already applied.
WARM_FRACTION = 0.9

#: cap on measured batches per (size, fraction) so the 1-per-mille setting
#: doesn't loop hundreds of times on the large trace.
MAX_BATCHES = 20

SCORED = ("CN", "AA", "RA")


def _query(snapshot: Snapshot) -> list[bytes]:
    """The per-batch downstream work: enumerate + score all candidates."""
    pairs = two_hop_pairs(snapshot)
    out = [pairs.tobytes()]
    for name in SCORED:
        out.append(get_metric(name).fit(snapshot).score(pairs).tobytes())
    return out


def bench_fraction(events: list, fraction: float) -> dict:
    total = len(events)
    warm_cutoff = int(total * WARM_FRACTION)
    batch_size = max(1, int(total * fraction))

    delta = DeltaGraph(TemporalGraph.from_stream(events[: warm_cutoff]))
    delta_s = rebuild_s = 0.0
    batches = 0
    position = warm_cutoff
    while position < total and batches < MAX_BATCHES:
        batch = events[position : position + batch_size]
        position += len(batch)
        batches += 1

        started = time.perf_counter()
        delta.apply(batch)
        delta_result = _query(delta.materialize())
        delta_s += time.perf_counter() - started

        prefix = events[:position]
        started = time.perf_counter()
        u = np.asarray([e[0] for e in prefix], dtype=np.int64)
        v = np.asarray([e[1] for e in prefix], dtype=np.int64)
        t = np.asarray([e[2] for e in prefix], dtype=np.float64)
        rebuilt = TemporalGraph.from_columns(u, v, t, validated=True)
        rebuild_result = _query(Snapshot(rebuilt, rebuilt.num_edges))
        rebuild_s += time.perf_counter() - started

        assert delta_result == rebuild_result, (
            f"delta/rebuild parity broke at batch {batches} "
            f"(fraction={fraction})"
        )
    return {
        "fraction": fraction,
        "batch_events": batch_size,
        "batches": batches,
        "delta_s": round(delta_s, 4),
        "rebuild_s": round(rebuild_s, 4),
        "speedup": round(rebuild_s / delta_s, 2),
    }


def _summary_line(e: dict) -> str:
    per_batch = ", ".join(
        f"{b['fraction'] * 100:g}%: {b['speedup']}x" for b in e["batch_sizes"]
    )
    return (
        f"{e['label']:>6} (n={e['nodes']}, E={e['edges']}): "
        f"delta vs rebuild — {per_batch}"
    )


def run(scales, write_json: bool) -> dict:
    sizes = []
    for label, dataset, scale in scales:
        trace = presets.load(dataset, scale=scale, seed=3)
        events = list(trace.edges())
        entry = {
            "label": label,
            "dataset": dataset,
            "scale": scale,
            "nodes": trace.num_nodes,
            "edges": trace.num_edges,
            "batch_sizes": [bench_fraction(events, f) for f in FRACTIONS],
        }
        sizes.append(entry)
        print(f"[{label}] nodes={entry['nodes']} edges={entry['edges']}")
        for section in entry["batch_sizes"]:
            print(f"  {section}")

    if write_json:
        # Acceptance floor (ISSUE 6): on the largest size, small batches
        # must come in at >= 5x over full rebuilds.  Asserted at the
        # smallest measured fraction; the larger fractions are reported
        # but dominated by genuinely-changed scores (module docstring).
        largest = sizes[-1]
        for section in largest["batch_sizes"]:
            if section["fraction"] <= FLOOR_FRACTION:
                assert section["speedup"] >= 5.0, (
                    f"delta speedup floor missed on {largest['label']}: "
                    f"{section}"
                )
        report = build_report("delta", sizes)
        write_report(report, line_formatter=_summary_line, json_stem="delta")
        return report
    return build_report("delta", sizes)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size only, parity-checked, no BENCH_delta.json rewrite",
    )
    args = parser.parse_args()
    scales = SIZES[:1] if args.smoke else SIZES
    run(scales, write_json=not args.smoke)


if __name__ == "__main__":
    main()
