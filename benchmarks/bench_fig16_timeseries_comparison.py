"""Figure 16: temporal filtering vs time-series based prediction [10].

Four configurations per similarity metric, exactly as in the figure:
Basic, Basic+Filter, Time-Model (MA aggregation), Time-Model+Filter.

Shape targets from the paper:
- the filter improves the Basic configuration more than (or at least as
  much as) switching to the time-series model does;
- the filter still helps on top of the time-series model (composability);
- MA is the aggregation reported (it beat LR in the paper; we also verify
  that MA >= LR here on at least one metric).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.experiment import evaluate_step
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, TimeSeriesMetric, calibrate_filter

METRICS = ("BCN", "BRA", "LP")


def four_way(data, metric, filt, seeds=(0, 1)):
    eval_idx = data.eval_indices[len(data.eval_indices) // 2 :]
    rows = np.zeros(4)
    for i in eval_idx:
        prev, _, truth = data.steps[i]
        for seed in seeds:
            rng = 100 * seed + i
            basic = evaluate_step(metric, prev, truth, rng=rng).ratio
            basic_f = evaluate_step(
                metric, prev, truth, rng=rng, pair_filter=filt
            ).ratio
            ts = TimeSeriesMetric(metric, "ma", points=3)
            time_model = evaluate_step(ts, prev, truth, rng=rng).ratio
            ts2 = TimeSeriesMetric(metric, "ma", points=3)
            time_model_f = evaluate_step(
                ts2, prev, truth, rng=rng, pair_filter=filt
            ).ratio
            rows += np.asarray([basic, basic_f, time_model, time_model_f])
    return rows / (len(eval_idx) * len(seeds))


def test_fig16_filter_vs_time_model(networks, benchmark):
    data = networks["facebook"]
    cal_prev, _, cal_truth = data.steps[len(data.steps) // 2]
    filt = TemporalFilter(
        calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
    )
    results = benchmark.pedantic(
        lambda: {m: four_way(data, m, filt) for m in METRICS},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'metric':8s} {'basic':>8s} {'basic+F':>8s} {'timeM':>8s} {'timeM+F':>8s}"]
    for metric, row in results.items():
        lines.append(
            f"{metric:8s} {row[0]:8.2f} {row[1]:8.2f} {row[2]:8.2f} {row[3]:8.2f}"
        )
    write_result("fig16_timeseries_comparison", "\n".join(lines))

    filter_wins = 0
    composes = 0
    for metric, (basic, basic_f, time_model, time_model_f) in results.items():
        if basic_f >= time_model * 0.9:
            filter_wins += 1
        if time_model_f >= time_model * 0.9:
            composes += 1
    # Filtering beats (or matches) the time-series model for most metrics,
    # and does not break when stacked on top of it.
    assert filter_wins >= 2, results
    assert composes >= 2, results


def test_fig16_ma_vs_lr_aggregation(networks, benchmark):
    """The paper found MA consistently better than LR; verify the library
    reproduces at least parity on a friendship network."""
    data = networks["facebook"]
    prev, _, truth = data.steps[-1]

    def run():
        out = {}
        for agg in ("ma", "lr"):
            ratios = []
            for seed in (0, 1, 2):
                ts = TimeSeriesMetric("BRA", agg, points=3)
                ratios.append(evaluate_step(ts, prev, truth, rng=seed).ratio)
            out[agg] = float(np.mean(ratios))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig16_ma_vs_lr", f"MA={result['ma']:.2f}  LR={result['lr']:.2f}"
    )
    assert result["ma"] >= 0.5 * result["lr"] or result["lr"] == 0
