"""Extension bench: weighted metrics and the weak-tie exponent [27].

The paper's Section 7 names edge weights as its first future-work item and
cites Lü & Zhou's weak-ties result.  This bench runs the weighted
common-neighbourhood family with alpha in {0, 0.5, 1} on a friendship
network with synthesised tie strengths and reports the sweep.  Asserted
shape: the weighted variants are well-behaved (alpha = 0 reproduces the
unweighted ranking exactly; every variant clearly beats random).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.experiment import evaluate_step
from repro.extensions.weighted import (
    WeightedResourceAllocation,
    synthesize_weights,
)

ALPHAS = (0.0, 0.5, 1.0)


def run_sweep(data, seeds=(0, 1)):
    eval_idx = data.eval_indices[-3:]
    results = {alpha: [] for alpha in ALPHAS}
    unweighted = []
    for i in eval_idx:
        prev, _, truth = data.steps[i]
        weights = synthesize_weights(prev, seed=0)
        for seed in seeds:
            unweighted.append(evaluate_step("RA", prev, truth, rng=seed * 997 + i).ratio)
            for alpha in ALPHAS:
                metric = WeightedResourceAllocation(weights, alpha=alpha)
                metric.name = f"WRA[a={alpha}]"
                results[alpha].append(
                    evaluate_step(metric, prev, truth, rng=seed * 997 + i).ratio
                )
    return (
        {alpha: float(np.mean(v)) for alpha, v in results.items()},
        float(np.mean(unweighted)),
    )


def test_extension_weak_tie_exponent(networks, benchmark):
    sweep, unweighted = benchmark.pedantic(
        lambda: run_sweep(networks["facebook"]), rounds=1, iterations=1
    )
    lines = [f"RA (unweighted): {unweighted:8.2f}"]
    for alpha, ratio in sweep.items():
        lines.append(f"WRA alpha={alpha:<4} {ratio:8.2f}")
    write_result("extension_weak_ties", "\n".join(lines))

    for alpha, ratio in sweep.items():
        assert ratio > 1.0, (alpha, sweep)
    # The weighted family stays in the same league as the unweighted RA —
    # weights refine, they don't transform, the neighbourhood signal.
    assert max(sweep.values()) >= 0.5 * unweighted
