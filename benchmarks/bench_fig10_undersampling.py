"""Figure 10: classification accuracy as a function of the undersampling
ratio theta used during training.

The paper's finding: accuracy ratio improves as theta moves from the
conventional balanced 1:1 towards the data's true imbalance (~1:100,000 on
their traces, about 1:1,000 on these scaled-down graphs), by up to a factor
of 5.  Shape target: the best theta is never the balanced one by a clear
margin, i.e. realistic sampling >= balanced sampling (within noise).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.classify import ClassificationPredictor
from repro.classify.sampling import true_imbalance

THETAS = {"1:1": 1.0, "1:10": 1 / 10, "1:100": 1 / 100, "1:1000": 1 / 1000}


def sweep_theta(instance, seeds=2):
    out = {}
    for label, theta in THETAS.items():
        ratios = []
        for seed in range(seeds):
            # Raw features (log_features=False): the paper-faithful
            # configuration whose accuracy actually depends on theta.  The
            # library's default log-transformed features largely remove the
            # imbalance sensitivity — measured in this bench's second test.
            predictor = ClassificationPredictor(
                "SVM", theta=theta, seed=seed, log_features=False
            )
            ratios.append(predictor.evaluate_instance(instance, rng=seed).ratio)
        out[label] = float(np.mean(ratios))
    return out


def test_fig10_undersampling_sweep(networks, classification_instances, benchmark):
    results = benchmark.pedantic(
        lambda: {
            name: sweep_theta(classification_instances[name][1])
            for name in ("facebook", "youtube")
        },
        rounds=1,
        iterations=1,
    )
    lines = [f"{'network':10s} " + " ".join(f"{t:>9s}" for t in THETAS)]
    for name, row in results.items():
        lines.append(
            f"{name:10s} " + " ".join(f"{row[t]:9.2f}" for t in THETAS)
        )
    imbalance = true_imbalance(
        classification_instances["facebook"][1].train_view,
        classification_instances["facebook"][1].label_view,
    )
    lines.append(f"facebook true imbalance ~= 1:{round(1 / imbalance)}")
    write_result("fig10_undersampling", "\n".join(lines))

    for name, row in results.items():
        best_label = max(row, key=row.get)
        # The balanced 1:1 configuration never wins by a clear margin.
        assert row[best_label] >= row["1:1"], (name, row)
        if best_label == "1:1":
            others = max(v for k, v in row.items() if k != "1:1")
            assert row["1:1"] <= 1.5 * others, (name, row)


def test_fig10_log_features_reduce_theta_sensitivity(
    classification_instances, benchmark
):
    """Ablation insight: Fig. 10's imbalance sensitivity is a raw-feature
    phenomenon.  With the library's log-transformed features the SVM's
    accuracy becomes much flatter across theta."""
    instance = classification_instances["facebook"][1]

    def spreads():
        out = {}
        for label, log_features in (("raw", False), ("log", True)):
            values = []
            for theta in (1.0, 1 / 100):
                ratios = [
                    ClassificationPredictor(
                        "SVM", theta=theta, seed=seed, log_features=log_features
                    )
                    .evaluate_instance(instance, rng=seed)
                    .ratio
                    for seed in range(2)
                ]
                values.append(float(np.mean(ratios)))
            low = min(values)
            out[label] = max(values) / low if low > 0 else float("inf")
        return out

    result = benchmark.pedantic(spreads, rounds=1, iterations=1)
    write_result(
        "fig10_log_feature_sensitivity",
        f"theta spread (1:100 over 1:1): raw={result['raw']:.2f}x "
        f"log={result['log']:.2f}x",
    )
    assert result["raw"] >= result["log"] * 0.8, result
