"""Table 6: data instances for evaluating classification algorithms.

Regenerates the per-network train/test instances (snowball-sampled for the
larger networks, full population for Facebook) and reports their sizes,
mirroring the small/large instance rows of the paper's table.
"""

from benchmarks.conftest import write_result
from repro.graph.sampling import snowball_sample


def test_table6_instance_statistics(networks, classification_instances, benchmark):
    def summarise():
        rows = []
        for name, insts in classification_instances.items():
            for size, inst in zip(("small", "large"), insts):
                rows.append(
                    (
                        name,
                        size,
                        inst.train_view.num_nodes,
                        inst.train_view.num_edges,
                        inst.test_view.num_nodes,
                        inst.test_view.num_edges,
                        inst.k,
                    )
                )
        return rows

    rows = benchmark(summarise)
    lines = [
        f"{'graph':10s} {'size':6s} {'train_n':>8s} {'train_e':>8s} "
        f"{'test_n':>8s} {'test_e':>8s} {'k':>6s}"
    ]
    for name, size, tn, te, sn, se, k in rows:
        lines.append(
            f"{name:10s} {size:6s} {tn:8d} {te:8d} {sn:8d} {se:8d} {k:6d}"
        )
    write_result("table6_instances", "\n".join(lines))

    for name, size, tn, te, sn, se, k in rows:
        assert k > 0, f"{name}/{size}: instance must have positive ground truth"
        assert se >= te * 0.5  # test view extends the train view's era


def test_table6_snowball_sampling_cost(networks, benchmark):
    """Times the snowball sampling step on the largest network."""
    s = networks["youtube"].snapshots[-1]
    sample = benchmark(lambda: snowball_sample(s, fraction=0.5, rng=0))
    assert len(sample) == round(0.5 * s.num_nodes)
