"""Table 8: accuracy ratio after filtering vs before, for every metric-based
algorithm and the SVM classifier, on every network.

Shape targets from the paper:
- filtering improves most algorithms (values >= ~1) and dramatically
  improves the weakest ones (the paper's SP: 14.9x on Renren, 15.7x on
  YouTube);
- a "-" appears where the unfiltered accuracy is zero (the paper's JC on
  YouTube);
- classifiers gain a modest factor (1.1-2.2x in the paper).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.classify import ClassificationPredictor
from repro.eval.experiment import evaluate_step
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter

METRICS = ("JC", "BCN", "BAA", "BRA", "LP", "LRW", "PPR", "SP", "Rescal", "PA")


def build_filters(networks):
    filters = {}
    for name, data in networks.items():
        cal_prev, _, cal_truth = data.steps[len(data.steps) // 2]
        filters[name] = TemporalFilter(
            calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
        )
    return filters


def improvement_table(networks, filters):
    table = {}
    for name, data in networks.items():
        eval_idx = data.eval_indices[len(data.eval_indices) // 2 :]
        for metric in METRICS:
            base, filtered = [], []
            for i in eval_idx:
                prev, _, truth = data.steps[i]
                base.append(evaluate_step(metric, prev, truth, rng=100 + i).ratio)
                filtered.append(
                    evaluate_step(
                        metric, prev, truth, rng=100 + i, pair_filter=filters[name]
                    ).ratio
                )
            table[(name, metric)] = (float(np.mean(base)), float(np.mean(filtered)))
    return table


def classifier_improvement(instances, filters):
    out = {}
    for name in ("facebook", "youtube"):
        inst = instances[name][1]
        predictor = ClassificationPredictor("SVM", theta=1 / 100, seed=0)
        predictor.train(inst.train_view, inst.label_view)
        base = predictor.predict_step(inst.test_view, inst.truth, rng=0).ratio
        filtered = predictor.predict_step(
            inst.test_view, inst.truth, rng=0, pair_filter=filters[name]
        ).ratio
        out[name] = (base, filtered)
    return out


def format_cell(base, filtered):
    if base == 0:
        return "    -" if filtered == 0 else "  new"
    return f"{filtered / base:5.2f}"


def test_table8_metric_filter_improvement(networks, benchmark):
    filters = build_filters(networks)
    table = benchmark.pedantic(
        lambda: improvement_table(networks, filters), rounds=1, iterations=1
    )
    lines = ["improvement = filtered ratio / unfiltered ratio"]
    header = f"{'network':10s} " + " ".join(f"{m:>6s}" for m in METRICS)
    lines.append(header)
    for name in networks:
        cells = " ".join(
            f"{format_cell(*table[(name, m)]):>6s}" for m in METRICS
        )
        lines.append(f"{name:10s} {cells}")
    write_result("table8_filter_improvement", "\n".join(lines))

    for name in networks:
        improvements = [
            table[(name, m)][1] / table[(name, m)][0]
            for m in METRICS
            if table[(name, m)][0] > 0
        ]
        # Most algorithms gain or hold; the mean improvement is >= ~1.
        assert np.mean(improvements) > 0.85, (name, improvements)
        # Someone gains substantially (the paper's bold column).
        gains_or_rescued = max(improvements) > 1.15 or any(
            table[(name, m)][0] == 0 and table[(name, m)][1] > 0 for m in METRICS
        )
        assert gains_or_rescued, (name, table)


def test_table8_classifier_filter_improvement(
    networks, classification_instances, benchmark
):
    filters = build_filters(networks)
    results = benchmark.pedantic(
        lambda: classifier_improvement(classification_instances, filters),
        rounds=1,
        iterations=1,
    )
    lines = []
    for name, (base, filtered) in results.items():
        lines.append(f"{name:10s} SVM: {base:.2f} -> {filtered:.2f}")
    write_result("table8_classifier_improvement", "\n".join(lines))
    for name, (base, filtered) in results.items():
        if base > 0:
            assert filtered >= 0.6 * base, (name, base, filtered)
