"""Table 4: best absolute accuracy (%) of every metric on every dataset.

Shape targets from the paper:
- absolute accuracy is low everywhere (single-digit percent at best);
- SP's best absolute accuracy is near zero on every network;
- the best numbers come from the smallest network (Facebook in the paper;
  checked loosely here since our scale gap is much smaller).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.metrics import FIGURE5_METRICS


def best_absolute(sweep, network):
    return {
        metric: max(r.absolute for r in results)
        for metric, results in sweep[network].items()
    }


def test_table4_best_absolute_accuracy(networks, metric_sweep, benchmark):
    table = benchmark(
        lambda: {name: best_absolute(metric_sweep, name) for name in networks}
    )
    header = "network    " + " ".join(f"{m:>8s}" for m in FIGURE5_METRICS)
    lines = [header]
    for name, row in table.items():
        cells = " ".join(f"{100 * row[m]:8.2f}" for m in FIGURE5_METRICS)
        lines.append(f"{name:10s} {cells}")
    write_result("table4_absolute_accuracy", "\n".join(lines))

    for name, row in table.items():
        # "The best they can do is accuracy in the single digits": allow a
        # generous 20% ceiling at our (easier, smaller) scale.
        assert max(row.values()) < 0.20, (name, row)
        # SP never leads.  (At our scale the 2-hop pool is only ~50x the
        # prediction budget, so random-among-2-hop is less hopeless than on
        # the paper's graphs; SP still must trail the best clearly.)
        assert row["SP"] <= 0.8 * max(row.values()) + 1e-9, (name, row)


def test_table4_prediction_remains_hard(metric_sweep, networks, benchmark):
    """Even the best metric misses the overwhelming majority of new edges."""
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    for name in networks:
        row = best_absolute(metric_sweep, name)
        assert max(row.values()) < 0.5
