"""Extension bench: does link direction help on the subscription network?

The paper's Section 7 cites Yin et al. [43]: direction-aware features
improve prediction on follow-style networks.  The bench compares directed
preferential attachment (``out(u) * in(v)``) and the directed overlap
features against their undirected counterparts on a directed
subscription trace.

Shape target: the direction-aware PA is at least as good as undirected PA
(it bets on (active subscriber -> popular creator) pairs instead of
(hub, hub) pairs), and the directed machinery runs end-to-end through the
standard evaluation.
"""

import numpy as np

from benchmarks.conftest import SCALE, SEED, write_result
from repro.eval.experiment import evaluate_step, prediction_steps
from repro.extensions.directed import (
    DirectedPreferentialAttachment,
    SharedFollowees,
    TransitivePaths,
    generate_directed_trace,
)
from repro.generators.subscription import subscription_config
from repro.graph.snapshots import snapshot_sequence


def build_directed_network():
    config = subscription_config(
        total_nodes=max(60, int(2600 * SCALE * 0.6)),
        total_edges=max(250, int(7000 * SCALE * 0.6)),
        duration_days=100.0,
    )
    trace, directions = generate_directed_trace(config, seed=SEED)
    snaps = snapshot_sequence(trace, max(20, trace.num_edges // 15),
                              start=trace.num_edges // 3)
    return list(prediction_steps(snaps)), directions


def test_extension_directed_metrics(benchmark):
    steps, directions = build_directed_network()
    eval_steps = steps[-4:]

    def run():
        out = {}
        metrics = {
            "PA (undirected)": lambda: "PA",
            "dPA": lambda: DirectedPreferentialAttachment(directions),
            "dOUT": lambda: SharedFollowees(directions),
            "dTRANS": lambda: TransitivePaths(directions),
        }
        for label, factory in metrics.items():
            ratios = []
            for i, (prev, _, truth) in enumerate(eval_steps):
                for seed in range(2):
                    ratios.append(
                        evaluate_step(factory(), prev, truth, rng=seed * 100 + i).ratio
                    )
            out[label] = float(np.mean(ratios))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{label:18s} {ratio:8.2f}" for label, ratio in results.items()]
    write_result("extension_directed", "\n".join(lines))

    # Direction-aware PA does not lose to undirected PA (allowing noise).
    assert results["dPA"] >= 0.5 * results["PA (undirected)"], results
    # The directed machinery produces usable (non-degenerate) predictors.
    assert max(results.values()) > 1.0, results
