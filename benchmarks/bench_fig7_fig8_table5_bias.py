"""Figure 7, Figure 8 and Table 5: sources of low prediction accuracy.

For a friendship snapshot these benches compare each metric's *predicted*
edges against the ground-truth edges along three axes:

- Fig. 7 — degree distribution of the involved nodes (JC and PPR skew to
  low degree; the CN family skews high);
- Fig. 8 — idle time of the involved nodes (metrics are biased towards
  dormant nodes relative to the ground truth);
- Table 5 — concentration: the share of predicted vs real edges touching
  the 0.1% most frequently predicted nodes (metrics overpredict a small
  hub set).
"""

from collections import Counter

import numpy as np

from benchmarks.conftest import write_result

METRICS = ("JC", "PPR", "BCN", "BAA", "BRA", "LRW", "LP", "Rescal")


def node_degrees_of_pairs(snapshot, pairs):
    return np.asarray(
        [snapshot.degree(int(u)) for pair in pairs for u in pair], dtype=float
    )


def node_idles_of_pairs(snapshot, pairs):
    return np.asarray(
        [snapshot.idle_time(int(u)) for pair in pairs for u in pair], dtype=float
    )


def last_friendship_step(networks, metric_sweep, network="renren"):
    data = networks[network]
    last_j = len(data.eval_indices) - 1
    prev = data.steps[data.eval_indices[last_j]][0]
    truth = data.steps[data.eval_indices[last_j]][2]
    predictions = {
        metric: metric_sweep[network][metric][last_j].predicted
        for metric in METRICS
    }
    return prev, truth, predictions


def test_fig7_degree_bias(networks, metric_sweep, benchmark):
    prev, truth, predictions = benchmark(
        lambda: last_friendship_step(networks, metric_sweep)
    )
    truth_arr = np.asarray(sorted(truth))
    truth_deg = node_degrees_of_pairs(prev, truth_arr)
    lines = [f"ground truth median degree: {np.median(truth_deg):.1f}"]
    medians = {}
    for metric, pred in predictions.items():
        deg = node_degrees_of_pairs(prev, pred)
        medians[metric] = float(np.median(deg))
        lines.append(f"{metric:8s} median predicted degree: {medians[metric]:.1f}")
    write_result("fig7_degree_bias", "\n".join(lines))

    # Core Fig. 7 claim that survives our scale: the similarity metrics are
    # "strongly biased by node degree" — their predictions involve clearly
    # higher-degree nodes than the ground truth does.  (The paper's
    # JC/PPR-skew-low sub-observation needs the original graphs' huge
    # low-degree population and is reported, not asserted, here.)
    truth_median = float(np.median(truth_deg))
    high_biased = sum(1 for m in medians.values() if m > truth_median)
    assert high_biased >= len(medians) * 0.75, (truth_median, medians)


def test_fig8_idle_time_bias(networks, metric_sweep, benchmark):
    prev, truth, predictions = benchmark(
        lambda: last_friendship_step(networks, metric_sweep)
    )
    truth_arr = np.asarray(sorted(truth))
    truth_idle = float(np.median(node_idles_of_pairs(prev, truth_arr)))
    lines = [f"ground truth median idle: {truth_idle:.2f} days"]
    biased = 0
    for metric, pred in predictions.items():
        idle = float(np.median(node_idles_of_pairs(prev, pred)))
        lines.append(f"{metric:8s} median predicted idle: {idle:.2f} days")
        if idle >= truth_idle:
            biased += 1
    write_result("fig8_idle_time_bias", "\n".join(lines))

    # "Idle time of nodes in predicted edges by all metrics are larger than
    # that of ground truth."  Our generator's ground truth is itself heavily
    # recency-driven, so the separation is weaker than the paper's; require
    # the bias for a meaningful subset of metrics.
    assert biased >= 3, lines


def test_table5_node_concentration(networks, metric_sweep, benchmark):
    prev, truth, predictions = benchmark(
        lambda: last_friendship_step(networks, metric_sweep)
    )
    n_top = max(1, prev.num_nodes // 1000)  # the paper's 0.1%
    lines = [f"top node budget: {n_top} nodes (0.1%)"]
    overpredicting = 0
    for metric, pred in predictions.items():
        counts = Counter(int(u) for pair in pred for u in pair)
        top_nodes = {node for node, _ in counts.most_common(n_top)}
        pred_share = np.mean(
            [int(u) in top_nodes or int(v) in top_nodes for u, v in pred]
        )
        real_share = (
            np.mean([u in top_nodes or v in top_nodes for u, v in truth])
            if truth
            else 0.0
        )
        lines.append(
            f"{metric:8s} predicted: {100 * pred_share:5.1f}%  real: {100 * real_share:5.1f}%"
        )
        if pred_share > real_share:
            overpredicting += 1
    write_result("table5_node_concentration", "\n".join(lines))

    # Most metrics overpredict the involvement of their favourite nodes.
    assert overpredicting >= len(predictions) * 0.6, lines
