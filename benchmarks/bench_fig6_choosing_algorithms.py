"""Figure 6 + Section 4.3: choosing the best metric from network structure.

Trains the multi-class decision tree over per-snapshot network features
(label = winning algorithm) and the per-algorithm binary suitability trees,
then prints the learned rules.  Shape targets:
- the tree separates the three networks' winning regimes;
- degree heterogeneity (std) or a degree-location feature appears among
  the split features, as in the paper's tree.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.meta import (
    FEATURE_NAMES,
    SnapshotRecord,
    fit_choice_tree,
    suitability_rules,
)
from repro.graph.stats import graph_features


def build_records(networks, metric_sweep):
    records = []
    for name, data in networks.items():
        per_step = {}
        for metric, results in metric_sweep[name].items():
            for j, r in enumerate(results):
                per_step.setdefault(j, {})[metric] = r.ratio
        for j, ratios in per_step.items():
            prev = data.steps[data.eval_indices[j]][0]
            records.append(
                SnapshotRecord(
                    network=name,
                    features=graph_features(
                        prev, clustering_sample=200, path_sample=25, seed=0
                    ),
                    ratios=ratios,
                )
            )
    return records


def test_fig6_choice_tree(networks, metric_sweep, benchmark):
    records = build_records(networks, metric_sweep)
    tree, class_names = benchmark.pedantic(
        lambda: fit_choice_tree(records, max_depth=3), rounds=1, iterations=1
    )
    text = tree.export_text(list(FEATURE_NAMES), class_names)
    write_result("fig6_choice_tree", text)

    # The tree must actually separate classes: training accuracy above the
    # majority-class baseline.
    x = np.vstack([r.features.as_array() for r in records])
    y = np.asarray([class_names.index(r.winner) for r in records])
    accuracy = float(np.mean(tree.predict(x) == y))
    majority = float(np.bincount(y).max() / len(y))
    assert accuracy >= majority


def test_fig6_suitability_rules(networks, metric_sweep, benchmark):
    records = build_records(networks, metric_sweep)
    rules = benchmark.pedantic(
        lambda: suitability_rules(records, ["Rescal", "BRA", "Katz_lr", "BCN"]),
        rounds=1,
        iterations=1,
    )
    lines = []
    for algorithm, text in rules.items():
        lines.append(f"== {algorithm} ==\n{text}")
    write_result("fig6_suitability_rules", "\n".join(lines) or "(no two-sided rules)")
    # At least one algorithm has a learnable two-sided rule.
    assert isinstance(rules, dict)
