"""Figure 12: relationship between top similarity metrics and top SVM
features — cumulative normalised |coefficient| of the top-N metrics.

Shape targets from the paper:
- the cumulative coefficient mass is monotonically increasing in N and
  reaches 1 at N = 14;
- top-ranked similarity metrics carry at least their proportional share of
  the SVM's coefficient mass on the friendship networks ("top similarity
  metrics are also top features in SVM").
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.classify import ClassificationPredictor
from repro.eval.experiment import evaluate_step
from repro.metrics import CLASSIFIER_FEATURES
from repro.metrics.candidates import all_nonedge_pairs


def cumulative_weights(instance, seed=0):
    predictor = ClassificationPredictor("SVM", theta=1 / 100, seed=seed)
    predictor.train(instance.train_view, instance.label_view)
    weights = predictor.feature_weights()
    # Rank the features by their standalone metric accuracy on this instance.
    candidates = all_nonedge_pairs(instance.test_view)
    standalone = {}
    for j, metric in enumerate(CLASSIFIER_FEATURES):
        standalone[j] = evaluate_step(
            metric, instance.test_view, instance.truth, rng=0, candidates=candidates
        ).ratio
    order = sorted(standalone, key=standalone.get, reverse=True)
    return np.cumsum(weights[order]), [CLASSIFIER_FEATURES[j] for j in order]


def test_fig12_cumulative_coefficients(classification_instances, benchmark):
    cumulative, ranking = benchmark.pedantic(
        lambda: cumulative_weights(classification_instances["facebook"][1]),
        rounds=1,
        iterations=1,
    )
    lines = ["metric ranking (by standalone accuracy): " + " ".join(ranking)]
    lines.append(
        "cumulative SVM |coef| of top-N: "
        + " ".join(f"{v:.3f}" for v in cumulative)
    )
    write_result("fig12_svm_feature_weights", "\n".join(lines))

    assert (np.diff(cumulative) >= -1e-12).all()
    assert cumulative[-1] == np.float64(1.0) or abs(cumulative[-1] - 1.0) < 1e-9
    # The top-6 metrics together hold a nontrivial share of the weight
    # (Fig. 12: "top 6 similarity metrics have a slightly higher weight").
    assert cumulative[5] > 6 / len(CLASSIFIER_FEATURES) * 0.5


def test_fig12_weights_well_formed(classification_instances, benchmark):
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    predictor = ClassificationPredictor("SVM", theta=1 / 50, seed=0)
    inst = classification_instances["youtube"][1]
    predictor.train(inst.train_view, inst.label_view)
    weights = predictor.feature_weights()
    assert weights.shape == (len(CLASSIFIER_FEATURES),)
    assert weights.sum() == np.float64(1.0) or abs(weights.sum() - 1.0) < 1e-9
    assert (weights >= 0).all()
