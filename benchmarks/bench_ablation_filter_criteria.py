"""Ablation of the temporal filter's four criteria (Section 6.2).

Drops each criterion in turn (by widening its threshold to infinity) and
measures search-space reduction and accuracy.  Shape target: the full
filter prunes the most, and no single criterion carries the whole effect —
the criteria are complementary views of node activity.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.experiment import evaluate_step
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import FilterParams, TemporalFilter, calibrate_filter

HUGE = 1e9

VARIANTS = {
    "full": {},
    "no_active_idle": dict(d_act=HUGE),
    "no_inactive_idle": dict(d_inact=HUGE),
    "no_recent_edges": dict(min_new_edges=0),
    "no_cn_gap": dict(d_cn=HUGE),
}


def ablate(params: FilterParams, **overrides) -> TemporalFilter:
    values = dict(
        d_act=params.d_act,
        d_inact=params.d_inact,
        window=params.window,
        min_new_edges=params.min_new_edges,
        d_cn=params.d_cn,
    )
    values.update(overrides)
    return TemporalFilter(FilterParams(**values))


def run_ablation(data):
    cal_prev, _, cal_truth = data.steps[len(data.steps) // 2]
    base_params = calibrate_filter(cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0)
    eval_idx = data.eval_indices[-3:]
    rows = {}
    for label, overrides in VARIANTS.items():
        filt = ablate(base_params, **overrides)
        reductions, ratios = [], []
        for i in eval_idx:
            prev, _, truth = data.steps[i]
            pairs = two_hop_pairs(prev)
            reductions.append(filt.reduction(prev, pairs))
            ratios.append(
                evaluate_step("RA", prev, truth, rng=100 + i, pair_filter=filt).ratio
            )
        rows[label] = (float(np.mean(reductions)), float(np.mean(ratios)))
    return rows


def test_ablation_filter_criteria(networks, benchmark):
    rows = benchmark.pedantic(
        lambda: run_ablation(networks["facebook"]), rounds=1, iterations=1
    )
    lines = [f"{'variant':18s} {'reduction':>10s} {'RA ratio':>9s}"]
    for label, (reduction, ratio) in rows.items():
        lines.append(f"{label:18s} {100 * reduction:9.1f}% {ratio:9.2f}")
    write_result("ablation_filter_criteria", "\n".join(lines))

    full_reduction = rows["full"][0]
    # The full filter prunes at least as much as any single-criterion drop.
    for label, (reduction, _) in rows.items():
        assert reduction <= full_reduction + 1e-9, (label, rows)
    # No single criterion is the whole story: dropping any one still leaves
    # a filter that prunes something.
    pruning_variants = sum(
        1 for label, (red, _) in rows.items() if label != "full" and red > 0.05
    )
    assert pruning_variants >= 3, rows
