"""Ablations of the paper's parameter choices (Section 3.2).

The paper fixes several hyper-parameters after tuning: LP's eps = 1e-4,
Katz's beta = 1e-3, PPR's alpha = 0.15, and RESCAL's rank.  These benches
sweep each one and check that the paper's choice sits in the right regime
on the corresponding network.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.experiment import evaluate_step
from repro.metrics.base import get_metric


def sweep(data, factory, labels, seeds=(0, 1)):
    """Mean accuracy ratio for each parameterised metric instance."""
    eval_idx = data.eval_indices[-3:]
    out = {}
    for label, metric_args in labels.items():
        ratios = []
        for i in eval_idx:
            prev, _, truth = data.steps[i]
            for seed in seeds:
                metric = factory(**metric_args)
                ratios.append(
                    evaluate_step(metric, prev, truth, rng=seed * 1000 + i).ratio
                )
        out[label] = float(np.mean(ratios))
    return out


def test_ablation_lp_epsilon(networks, benchmark):
    """LP's eps must act as a tie-breaker: tiny eps ~ paper's 1e-4; a huge
    eps (3-hop paths dominating) degrades toward path-count noise."""
    data = networks["facebook"]
    labels = {
        "eps=0": dict(epsilon=0.0),
        "eps=1e-4": dict(epsilon=1e-4),
        "eps=1e-2": dict(epsilon=1e-2),
        "eps=10": dict(epsilon=10.0),
    }
    result = benchmark.pedantic(
        lambda: sweep(data, lambda **kw: get_metric("LP", **kw), labels),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_lp_epsilon",
        "\n".join(f"{k:10s} {v:8.2f}" for k, v in result.items()),
    )
    assert result["eps=1e-4"] >= 0.5 * max(result.values())


def test_ablation_katz_beta(networks, benchmark):
    """Katz beta sweep: small beta (paper: 1e-3) must be competitive; beta
    close to the spectral radius inverse destabilises the series."""
    data = networks["facebook"]
    labels = {
        "beta=1e-4": dict(beta=1e-4, max_length=4),
        "beta=1e-3": dict(beta=1e-3, max_length=4),
        "beta=1e-2": dict(beta=1e-2, max_length=4),
    }
    result = benchmark.pedantic(
        lambda: sweep(data, lambda **kw: get_metric("Katz_sc", **kw), labels),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_katz_beta",
        "\n".join(f"{k:10s} {v:8.2f}" for k, v in result.items()),
    )
    assert result["beta=1e-3"] >= 0.4 * max(result.values())


def test_ablation_rescal_rank(networks, benchmark):
    """RESCAL rank sweep on the subscription network: too small a latent
    space cannot separate communities; the default (25) must be in the
    useful regime."""
    data = networks["youtube"]
    labels = {
        "rank=2": dict(rank=2),
        "rank=8": dict(rank=8),
        "rank=25": dict(rank=25),
    }
    result = benchmark.pedantic(
        lambda: sweep(data, lambda **kw: get_metric("Rescal", **kw), labels),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_rescal_rank",
        "\n".join(f"{k:10s} {v:8.2f}" for k, v in result.items()),
    )
    assert result["rank=25"] >= result["rank=2"] * 0.8


def test_ablation_ppr_alpha(networks, benchmark):
    """PPR restart probability sweep around the paper's 0.15."""
    data = networks["facebook"]
    labels = {
        "alpha=0.05": dict(alpha=0.05),
        "alpha=0.15": dict(alpha=0.15),
        "alpha=0.5": dict(alpha=0.5),
        "alpha=0.9": dict(alpha=0.9),
    }
    result = benchmark.pedantic(
        lambda: sweep(data, lambda **kw: get_metric("PPR", **kw), labels),
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_ppr_alpha",
        "\n".join(f"{k:12s} {v:8.2f}" for k, v in result.items()),
    )
    assert result["alpha=0.15"] >= 0.4 * max(result.values())
