"""Durability benchmark: WAL replay throughput, RTO curve, ack overhead.

Three questions an operator of ``repro serve --wal`` needs answered:

- **Replay throughput** — how fast does :func:`repro.graph.wal.recover_state`
  push surviving records back through the delta engine (records/s and
  events/s, audit included)?
- **Recovery wall time vs WAL length (RTO curve)** — how does cold-start
  recovery scale with the number of un-checkpointed records, and how much
  does a checkpoint collapse it?
- **Durable-ingest overhead (RPO price)** — what do acked-batch latencies
  (p50/p99) cost under ``fsync=always`` relative to a WAL-less store, and
  how much of that the ``never`` cadence buys back?

Every replayed state is column-checked byte-identical against the
ingesting store before any number is trusted.  Results go to
``BENCH_recovery.json`` at the repo root and
``benchmarks/results/recovery.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py          # full sizes, writes BENCH_recovery.json
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke  # small sizes, no JSON (CI)
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.graph.dyngraph import TemporalGraph
from repro.graph.wal import recover_state
from repro.ingest import IngestPolicy
from repro.serve.durability import DurabilityManager
from repro.serve.store import ScoreStore

#: (label, WAL batches); every batch carries EVENTS_PER_BATCH events.
SIZES = (("short", 200), ("medium", 1_000), ("long", 4_000))
SMOKE_SIZES = (("smoke", 100),)

BASE_EVENTS = 2_000
EVENTS_PER_BATCH = 8


def synthesize(n_base: int, n_batches: int, seed: int = 11):
    """A base trace plus unique follow-on batches with increasing times."""
    rng = np.random.default_rng(seed)
    total = n_base + n_batches * EVENTS_PER_BATCH
    n_nodes = max(128, total // 6)
    pairs = np.empty((0, 2), dtype=np.int64)
    while len(pairs) < total:
        draw = rng.integers(0, n_nodes, size=(3 * total, 2), dtype=np.int64)
        draw = draw[draw[:, 0] != draw[:, 1]]
        lo = np.minimum(draw[:, 0], draw[:, 1])
        hi = np.maximum(draw[:, 0], draw[:, 1])
        pairs = np.unique(np.stack((lo, hi), axis=1), axis=0)
    pairs = pairs[rng.permutation(len(pairs))[:total]]
    times = np.sort(rng.exponential(scale=0.01, size=total).cumsum())
    base = TemporalGraph.from_columns(
        pairs[:n_base, 0].copy(), pairs[:n_base, 1].copy(), times[:n_base].copy(),
        validated=True,
    )
    batches = []
    for i in range(n_batches):
        lo = n_base + i * EVENTS_PER_BATCH
        hi = lo + EVENTS_PER_BATCH
        batches.append(
            "".join(
                f"{u} {v} {t!r}\n"
                for u, v, t in zip(
                    pairs[lo:hi, 0].tolist(),
                    pairs[lo:hi, 1].tolist(),
                    times[lo:hi].tolist(),
                )
            )
        )
    return base, batches


def percentile(samples: "list[float]", q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def ingest_all(store: ScoreStore, batches: "list[str]") -> "list[float]":
    """Per-batch ack latencies in milliseconds."""
    latencies = []
    for body in batches:
        started = time.perf_counter()
        store.ingest_lines(body)
        latencies.append((time.perf_counter() - started) * 1e3)
    return latencies


def bench_size(label: str, n_batches: int, workdir: Path) -> dict:
    base, batches = synthesize(BASE_EVENTS, n_batches)
    policy = IngestPolicy.repair()

    def fresh_base() -> TemporalGraph:
        # the delta engine grows its wrapped trace in place, so every
        # store (and the recovery call) needs its own copy of the base
        u, v, t = base.columns()
        return TemporalGraph.from_columns(
            u.copy(), v.copy(), t.copy(), validated=True
        )

    # -- ack latency: plain vs fsync=always vs fsync=never --------------
    gc.collect()
    plain = ingest_all(ScoreStore(fresh_base(), policy=policy), batches)

    latencies = {}
    for mode in ("always", "never"):
        wal_dir = workdir / f"{label}-{mode}"
        store_base = fresh_base()
        manager, _ = DurabilityManager.attach(
            wal_dir, store_base, policy, fsync=mode, checkpoint_every=0
        )
        store = ScoreStore(store_base, policy=policy, durability=manager)
        gc.collect()
        latencies[mode] = ingest_all(store, batches)
        # close WITHOUT the drain checkpoint: cold recovery below must
        # measure a full-WAL replay, not a checkpoint load
        manager.close()
        if mode == "always":
            durable_store, durable_dir = store, wal_dir

    # -- cold recovery: full WAL replay, audit included ------------------
    gc.collect()
    started = time.perf_counter()
    result = recover_state(durable_dir, fresh_base(), policy)
    recovery_s = time.perf_counter() - started
    assert result.clean and result.records_replayed == n_batches

    # parity before any number is trusted
    for got, want in zip(
        result.engine.trace.columns(), durable_store._engine.trace.columns()
    ):
        assert got.tobytes() == want.tobytes(), "recovery parity broke"

    # -- warm recovery: a checkpoint covering the whole WAL ---------------
    manager = DurabilityManager.attach(
        durable_dir, fresh_base(), policy, fsync="always", checkpoint_every=0
    )[0]
    manager.maybe_checkpoint(durable_store._engine.trace, force=True)
    manager.close()
    gc.collect()
    started = time.perf_counter()
    warm = recover_state(durable_dir, fresh_base(), policy)
    warm_s = time.perf_counter() - started
    assert warm.clean and warm.records_replayed == 0

    events = n_batches * EVENTS_PER_BATCH
    return {
        "label": label,
        "wal_records": n_batches,
        "wal_events": events,
        "base_events": BASE_EVENTS,
        "recovery_s": round(recovery_s, 4),
        "replay_records_per_s": round(n_batches / recovery_s, 1),
        "replay_events_per_s": round(events / recovery_s, 1),
        "checkpoint_recovery_s": round(warm_s, 4),
        "rto_collapse": round(recovery_s / warm_s, 2),
        "ingest_p50_ms": round(percentile(plain, 50), 4),
        "ingest_p99_ms": round(percentile(plain, 99), 4),
        "durable_p50_ms": round(percentile(latencies["always"], 50), 4),
        "durable_p99_ms": round(percentile(latencies["always"], 99), 4),
        "nosync_p99_ms": round(percentile(latencies["never"], 99), 4),
        "durable_p99_overhead": round(
            percentile(latencies["always"], 99) / percentile(plain, 99), 2
        ),
    }


def _summary_line(e: dict) -> str:
    return (
        f"{e['label']:>6} (R={e['wal_records']}): replay "
        f"{e['replay_records_per_s']} rec/s, cold RTO {e['recovery_s']}s "
        f"vs checkpoint {e['checkpoint_recovery_s']}s; durable ack p99 "
        f"{e['durable_p99_ms']}ms ({e['durable_p99_overhead']}x plain)"
    )


def run(sizes, write_json: bool) -> dict:
    entries = []
    with TemporaryDirectory() as tmp:
        for label, n_batches in sizes:
            entry = bench_size(label, n_batches, Path(tmp))
            entries.append(entry)
            print(
                f"[{label}] R={entry['wal_records']}: cold recovery "
                f"{entry['recovery_s']}s ({entry['replay_records_per_s']} rec/s, "
                f"{entry['replay_events_per_s']} ev/s), checkpointed "
                f"{entry['checkpoint_recovery_s']}s; ingest p99 "
                f"{entry['ingest_p50_ms']}/{entry['ingest_p99_ms']}ms plain vs "
                f"{entry['durable_p50_ms']}/{entry['durable_p99_ms']}ms durable "
                f"({entry['durable_p99_overhead']}x)"
            )

    report = build_report("recovery", entries)
    if write_json:
        write_report(report, line_formatter=_summary_line)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes only, parity-checked, no BENCH_recovery.json rewrite",
    )
    args = parser.parse_args()
    run(SMOKE_SIZES if args.smoke else SIZES, write_json=not args.smoke)


if __name__ == "__main__":
    main()
