"""Parallel experiment runner: parity and wall-clock speedup note.

The paper ran its 18-algorithm x 3-trace sweep on 10x 8-core servers; our
``run_experiment`` gains the same shape of scale-out via ``n_jobs``
work-cell dispatch.  This bench

- proves the parallel path returns canonical JSON byte-identical to the
  serial path on the spec it times (the full property-based parity suite
  lives in ``tests/test_parallel_parity.py``), and
- records measured serial vs parallel wall clock in
  ``benchmarks/results/parallel_runner.txt``, together with the core
  count — on a single-core container the pool can only add overhead, so
  the note always states the hardware it ran on.

The Fig. 5-8 substrate itself parallelises with ``REPRO_JOBS`` (see
``benchmarks/conftest.py``), e.g.::

    REPRO_JOBS=4 pytest benchmarks/bench_fig5_metric_accuracy.py --benchmark-only
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import SCALE, SEED, write_result
from repro.eval.runner import ExperimentSpec, run_experiment


def _spec(n_jobs: int = 1) -> ExperimentSpec:
    return ExperimentSpec(
        name="parallel-bench",
        dataset="facebook",
        scale=min(SCALE, 0.5),
        generation_seed=SEED,
        metrics=("CN", "AA", "RA", "BRA", "PA", "JC"),
        repeats=2,
        max_steps=4,
        n_jobs=n_jobs,
    )


def test_parallel_runner_parity_and_speedup(benchmark):
    jobs = max(2, os.cpu_count() or 1)

    started = time.perf_counter()
    serial = run_experiment(_spec(), n_jobs=1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_experiment(_spec(), n_jobs=jobs)
    parallel_wall = time.perf_counter() - started

    assert serial.to_json() == parallel.to_json(), "parallel path drifted"
    benchmark.pedantic(
        lambda: run_experiment(_spec(), n_jobs=1), rounds=1, iterations=1
    )

    speedup = serial_wall / parallel_wall if parallel_wall else float("inf")
    st, pt = serial.timing, parallel.timing
    lines = [
        f"host cores: {os.cpu_count()}",
        f"cells: {st.cells} (metric x step x seed)",
        f"serial   (n_jobs=1): {serial_wall:6.2f}s wall, "
        f"cache {st.cache_hits}h/{st.cache_misses}m",
        f"parallel (n_jobs={jobs}): {parallel_wall:6.2f}s wall, "
        f"max cell {pt.max_cell_seconds:.3f}s, "
        f"cache {pt.cache_hits}h/{pt.cache_misses}m",
        f"speedup: {speedup:.2f}x",
        "parity: canonical result JSON byte-identical",
    ]
    if (os.cpu_count() or 1) < 2:
        lines.append(
            "note: single-core host — pool spin-up and per-worker plan "
            "rebuild make the parallel path slower here; speedup requires "
            ">= 2 cores (cells are embarrassingly parallel beyond that)."
        )
    write_result("parallel_runner", "\n".join(lines))
