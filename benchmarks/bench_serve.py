"""Traffic-replay load bench for ``repro serve``: overload must shed, not wedge.

Drives concurrent **open-loop** load — arrivals scheduled on a fixed
clock, never gated on completions, the way real traffic behaves — at
three rates against an in-process :class:`~repro.serve.ServerHarness`:
below capacity, at capacity, and well past saturation.  Service time is
made deterministic by installing a :class:`~repro.eval.faults.FaultPlan`
delay on the ``serve.predict`` fault point, so "capacity" is a known
quantity (``workers / service_s``) rather than a machine-dependent one.

Two robustness invariants are asserted before any number is written:

- **Bounded overload**: at the saturating rate the server sheds with
  ``429`` (reject-newest admission) instead of queueing unboundedly —
  the shed rate at the top level must be positive, and every response
  is an explicit verdict (200/429/504), never a hang.
- **Deadline honesty**: no request the server *accepted* (status 200)
  took longer than its deadline budget, measured from the client side.
  Admission control exists precisely so accepted work finishes in time.

Per-level results — p50/p99 latency, throughput, shed rate — go to
``BENCH_serve.json`` at the repo root via the shared writer in
``benchmarks/_common.py`` (schema v1).  ``--smoke`` runs fewer requests
per level but still asserts both invariants and still writes the JSON,
so CI exercises the full reporting path.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full replay
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.eval.faults import FaultPlan, clear as clear_faults, install as install_faults
from repro.generators import presets
from repro.serve import ServeConfig, ServerHarness, request

#: injected per-lookup service time — makes capacity deterministic.
SERVICE_S = 0.025
WORKERS = 2
QUEUE_SIZE = 16
#: generous next to the worst honest wait (queue_size/workers * service
#: + service ≈ 0.23 s), so a 200 that breaches it is a real violation.
DEADLINE_S = 2.0
#: capacity in requests/s: WORKERS / SERVICE_S = 80.
CAPACITY_RPS = WORKERS / SERVICE_S
#: (label, rate multiplier vs capacity) — below, at, and past saturation.
LEVELS = [("0.5x", 0.5), ("1.0x", 1.0), ("2.5x", 2.5)]


async def _one(host: str, port: int, target: str, arrival: float):
    """Fire one request at its scheduled arrival; (status, latency_s)."""
    delay = arrival - asyncio.get_running_loop().time()
    if delay > 0:
        await asyncio.sleep(delay)
    started = time.perf_counter()
    response = await request(
        host, port, "GET", target, timeout=DEADLINE_S + 10.0
    )
    return response.status, time.perf_counter() - started


async def _replay(host: str, port: int, rate_rps: float, total: int, nodes):
    """Open-loop replay: ``total`` arrivals at ``rate_rps``, never gated."""
    loop = asyncio.get_running_loop()
    interval = 1.0 / rate_rps
    epoch = loop.time() + 0.05
    tasks = [
        asyncio.ensure_future(
            _one(
                host,
                port,
                f"/predict?u={nodes[i % len(nodes)]}&k=5&metric=RA",
                epoch + i * interval,
            )
        )
        for i in range(total)
    ]
    started = time.perf_counter()
    results = await asyncio.gather(*tasks)
    return results, time.perf_counter() - started


def _probe_nodes(trace, count: int = 8):
    u, v, _t = trace.columns()
    ids, freq = np.unique(np.concatenate([u, v]), return_counts=True)
    order = np.argsort(-freq, kind="stable")
    return [int(ids[i]) for i in order[:count]]


def run_level(harness, label: str, rate_rps: float, total: int, nodes) -> dict:
    results, wall_s = asyncio.run(
        _replay(harness.host, harness.port, rate_rps, total, nodes)
    )
    counts = {}
    ok_latencies = []
    for status, latency_s in results:
        counts[status] = counts.get(status, 0) + 1
        if status == 200:
            ok_latencies.append(latency_s)
    ok = counts.get(200, 0)
    shed = counts.get(429, 0)
    timed_out = counts.get(504, 0)
    other = total - ok - shed - timed_out
    assert other == 0, f"[{label}] unexpected statuses: {counts}"
    assert ok > 0, f"[{label}] no request succeeded: {counts}"

    # Deadline honesty: an accepted request never outlives its budget.
    worst_ok_s = max(ok_latencies)
    assert worst_ok_s <= DEADLINE_S, (
        f"[{label}] accepted request took {worst_ok_s:.3f}s, "
        f"deadline budget is {DEADLINE_S:.3f}s"
    )

    lat_ms = np.sort(np.asarray(ok_latencies)) * 1000.0
    entry = {
        "label": label,
        "rate_rps": round(rate_rps, 1),
        "capacity_rps": round(CAPACITY_RPS, 1),
        "requests": total,
        "workers": WORKERS,
        "queue_size": QUEUE_SIZE,
        "service_ms": SERVICE_S * 1000.0,
        "deadline_ms": DEADLINE_S * 1000.0,
        "ok": ok,
        "shed": shed,
        "deadline_504": timed_out,
        "shed_rate": round(shed / total, 4),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 2),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 2),
        "max_ok_ms": round(float(lat_ms[-1]), 2),
        "throughput_rps": round(ok / wall_s, 1),
        "wall_s": round(wall_s, 3),
    }
    print(
        f"[{label}] {rate_rps:.0f} rps x {total}: {ok} ok, {shed} shed "
        f"({entry['shed_rate']:.0%}), p50 {entry['p50_ms']:.1f} ms, "
        f"p99 {entry['p99_ms']:.1f} ms, {entry['throughput_rps']:.0f} rps served"
    )
    return entry


def run(per_level: int) -> dict:
    trace = presets.facebook_like(scale=0.25, seed=7)
    nodes = _probe_nodes(trace)
    install_faults(
        FaultPlan(delays={"serve.predict": (SERVICE_S, 10**9)})
    )
    config = ServeConfig(
        port=0,
        workers=WORKERS,
        queue_size=QUEUE_SIZE,
        deadline_s=DEADLINE_S,
        drain_s=10.0,
    )
    try:
        with ServerHarness(trace, config) as harness:
            sizes = [
                run_level(
                    harness, label, CAPACITY_RPS * mult, per_level, nodes
                )
                for label, mult in LEVELS
            ]
    finally:
        clear_faults()

    # Bounded overload: the saturating level must shed, the comfortable
    # level must not.
    assert sizes[-1]["shed"] > 0, (
        "saturating load produced no 429s — admission control not engaged"
    )
    assert sizes[0]["shed_rate"] < 0.05, (
        f"below-capacity load shed {sizes[0]['shed_rate']:.0%} of requests"
    )
    return build_report("serve", sizes)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer requests per level; invariants and JSON still exercised",
    )
    args = parser.parse_args()
    report = run(per_level=80 if args.smoke else 300)
    write_report(
        report,
        line_formatter=lambda e: (
            f"{e['label']:>5}: {e['rate_rps']:>6.1f} rps -> "
            f"p50 {e['p50_ms']:>7.2f} ms, p99 {e['p99_ms']:>7.2f} ms, "
            f"shed {e['shed_rate']:.0%}, served {e['throughput_rps']:.0f} rps"
        ),
    )


if __name__ == "__main__":
    main()
