"""Figures 13-15: temporal separation of positive vs negative node pairs.

For one snapshot of each network this bench compares, between the pairs
that connect next (positive) and those that do not (negative):

- Fig. 13 — idle time of the active node (positives much fresher);
- Fig. 14 — edges created by the active node in the recent window
  (positives more active);
- Fig. 15 — CN time gap (positives gained a common neighbour recently).

These separations are the empirical basis of the temporal filters.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import pair_activity
from repro.temporal.calibrate import positive_negative_pairs


def separation(data, window=None):
    prev, _, truth = data.steps[-1]
    candidates = two_hop_pairs(prev)
    positives, negatives = positive_negative_pairs(
        prev, truth, candidates, negative_sample=3000, rng=0
    )
    if window is None:
        window = max(1.0, (prev.time - prev.trace.start_time) / 10.0)
    pos = pair_activity(prev, positives, window=window)
    neg = pair_activity(prev, negatives, window=window)
    return pos, neg, len(positives)


def test_fig13_active_idle_separation(networks, benchmark):
    results = benchmark.pedantic(
        lambda: {name: separation(d) for name, d in networks.items()},
        rounds=1,
        iterations=1,
    )
    lines = []
    ok = 0
    for name, (pos, neg, n_pos) in results.items():
        p50_pos = float(np.median(pos.active_idle))
        p50_neg = float(np.median(neg.active_idle))
        lines.append(
            f"{name:10s} active idle median: positive={p50_pos:.2f}d "
            f"negative={p50_neg:.2f}d (n_pos={n_pos})"
        )
        if p50_pos <= p50_neg:
            ok += 1
    write_result("fig13_active_idle", "\n".join(lines))
    assert ok == len(results), lines


def test_fig14_recent_edges_separation(networks, benchmark):
    results = benchmark.pedantic(
        lambda: {name: separation(d) for name, d in networks.items()},
        rounds=1,
        iterations=1,
    )
    lines = []
    ok = 0
    for name, (pos, neg, _) in results.items():
        mean_pos = float(np.mean(pos.recent_edges))
        mean_neg = float(np.mean(neg.recent_edges))
        lines.append(
            f"{name:10s} recent edges of active node: positive={mean_pos:.2f} "
            f"negative={mean_neg:.2f}"
        )
        if mean_pos >= mean_neg:
            ok += 1
    write_result("fig14_recent_edges", "\n".join(lines))
    assert ok == len(results), lines


def test_fig15_cn_gap_separation(networks, benchmark):
    results = benchmark.pedantic(
        lambda: {name: separation(d) for name, d in networks.items()},
        rounds=1,
        iterations=1,
    )
    lines = []
    ok = 0
    for name, (pos, neg, _) in results.items():
        pos_gap = pos.cn_gap[np.isfinite(pos.cn_gap)]
        neg_gap = neg.cn_gap[np.isfinite(neg.cn_gap)]
        if len(pos_gap) == 0 or len(neg_gap) == 0:
            continue
        p50_pos, p50_neg = float(np.median(pos_gap)), float(np.median(neg_gap))
        lines.append(
            f"{name:10s} CN time gap median: positive={p50_pos:.2f}d "
            f"negative={p50_neg:.2f}d"
        )
        if p50_pos <= p50_neg:
            ok += 1
    write_result("fig15_cn_gap", "\n".join(lines))
    assert ok >= 2, lines  # the friendship networks must show it clearly
