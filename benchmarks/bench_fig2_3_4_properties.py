"""Figures 2-4: average degree, average path length, clustering coefficient
over each network's evolution.

Shape targets from the paper:
- average degree grows over time on every network (densification, Fig. 2);
- Renren and Facebook are much denser than YouTube;
- YouTube has the largest average path length (Fig. 3);
- path length shrinks (or at least does not grow) as networks densify.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.graph import stats


def evolution(data, samples=5):
    idx = np.linspace(0, len(data.snapshots) - 1, samples, dtype=int)
    rows = []
    for i in idx:
        s = data.snapshots[int(i)]
        rows.append(
            (
                s.num_edges,
                stats.average_degree(s),
                stats.average_path_length(s, sample_size=40, seed=0),
                stats.average_clustering(s, sample_size=300, seed=0),
            )
        )
    return rows


def test_fig2_3_4_property_evolution(networks, benchmark):
    evo = benchmark.pedantic(
        lambda: {name: evolution(d) for name, d in networks.items()},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'network':10s} {'edges':>8s} {'avg_deg':>8s} {'apl':>6s} {'clust':>6s}"]
    for name, rows in evo.items():
        for edges, deg, apl, clust in rows:
            lines.append(
                f"{name:10s} {edges:8d} {deg:8.2f} {apl:6.2f} {clust:6.3f}"
            )
    write_result("fig2_3_4_properties", "\n".join(lines))

    for name, rows in evo.items():
        degrees = [r[1] for r in rows]
        assert degrees[-1] > degrees[0], f"{name}: average degree must grow (Fig. 2)"

    final = {name: rows[-1] for name, rows in evo.items()}
    # Density ordering: Renren > Facebook > YouTube (Fig. 2).
    assert final["renren"][1] > final["facebook"][1] > final["youtube"][1]
    # YouTube has the largest path length (Fig. 3).
    assert final["youtube"][2] >= max(final["facebook"][2], final["renren"][2])


def test_fig4_friendship_clusters_more(networks, benchmark):
    def final_clustering():
        return {
            name: stats.average_clustering(d.snapshots[-1], sample_size=300, seed=0)
            for name, d in networks.items()
        }

    clust = benchmark.pedantic(final_clustering, rounds=1, iterations=1)
    assert clust["facebook"] > clust["youtube"]
    assert clust["renren"] > clust["youtube"]
