"""Telemetry overhead benchmark: disabled tracing must be (nearly) free.

The instrumentation contract in ``repro.telemetry`` is that a disabled
tracer costs one attribute lookup per call site.  This benchmark holds
the repo to that: it times the columnar half of the
``bench_core_scaling.py --smoke`` sweep (snapshot-sequence construction,
candidate enumeration, CN/PA fit + score on every prediction step —
exactly the instrumented hot paths) under three telemetry modes:

- **reference** — a bench-local, hand-minimal null tracer/registry
  monkeypatched into ``repro.telemetry``; the floor for what *any*
  guard-based instrumentation could cost;
- **disabled** — the shipped defaults (``NULL_TRACER`` /
  ``NULL_REGISTRY``), i.e. what every user who never passes
  ``--telemetry`` pays;
- **enabled** — a live buffering :class:`~repro.telemetry.Tracer` and
  :class:`~repro.telemetry.MetricsRegistry` (no sink), i.e. the worker-
  mode recording cost.

Scores are asserted byte-identical across all three modes before any
timing is trusted (telemetry must never perturb results), and the
acceptance bar is enforced here: best-of-k disabled time within 2% of
the reference floor (plus a small absolute slack so a ~10 ms timer
wobble on a sub-second workload cannot fail CI spuriously).  Results go
to ``BENCH_telemetry.json`` at the repo root via the shared writer in
``benchmarks/_common.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py          # writes BENCH_telemetry.json
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke  # fewer repeats, no JSON (CI)
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro import telemetry
from repro.generators import presets
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics.base import get_metric
from repro.metrics.candidates import candidate_pairs
from repro.telemetry import MetricsRegistry, Tracer

#: the acceptance bar: disabled-vs-reference relative overhead.
MAX_DISABLED_OVERHEAD = 0.02
#: absolute slack, seconds — best-of-k minima on a sub-second workload
#: still wobble by ~1 timer tick; 2% of that is below measurement noise.
ABS_SLACK_S = 0.010


# ---------------------------------------------------------------------------
# Reference mode: the cheapest possible guard-compatible null objects
# ---------------------------------------------------------------------------
class _RefSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs):
        return self


_REF_SPAN = _RefSpan()


class _RefTracer:
    enabled = False

    def span(self, name, /, **attrs):  # noqa: ARG002
        return _REF_SPAN


class _RefInstrument:
    __slots__ = ()

    def inc(self, n=1):
        return None

    def set(self, value):
        return None

    def observe(self, value):
        return None


_REF_INSTRUMENT = _RefInstrument()


class _RefRegistry:
    enabled = False

    def counter(self, name, /, **labels):  # noqa: ARG002
        return _REF_INSTRUMENT

    def gauge(self, name, /, **labels):  # noqa: ARG002
        return _REF_INSTRUMENT

    def histogram(self, name, /, bounds=None, **labels):  # noqa: ARG002
        return _REF_INSTRUMENT


@contextmanager
def _telemetry_mode(tracer, registry):
    """Temporarily install (tracer, registry) as the module defaults."""
    saved = (telemetry.tracer, telemetry.metrics)
    telemetry.tracer, telemetry.metrics = tracer, registry
    try:
        yield
    finally:
        telemetry.tracer, telemetry.metrics = saved


# ---------------------------------------------------------------------------
# Workload: the columnar half of the core-scaling smoke sweep
# ---------------------------------------------------------------------------
def _sweep(graph: TemporalGraph, delta: int) -> "list[np.ndarray]":
    """Snapshot sequence + candidate enumeration + CN/PA fit-and-score."""
    out = []
    cutoffs = [s.cutoff for s in snapshot_sequence(graph, delta)][:-1]
    for cutoff in cutoffs:
        snap = Snapshot(graph, cutoff)
        for name in ("CN", "PA"):
            metric = get_metric(name).fit(snap)
            pairs = candidate_pairs(snap, metric.candidate_strategy)
            if len(pairs):
                out.append(metric.score(pairs))
    return out


def _time_mode(events, delta, make_telemetry, repeats: int):
    """(best-of-k seconds, first-run scores, span/metric payload counts).

    Every repetition gets a fresh graph (cold trace-level caches) built
    *outside* the timed region, and — in enabled mode — a fresh tracer
    and registry so buffered spans never accumulate across runs.
    """
    best = float("inf")
    scores = None
    spans = metrics_payloads = 0
    for _ in range(repeats):
        graph = TemporalGraph.from_stream(events)
        tracer, registry = make_telemetry()
        gc.collect()
        with _telemetry_mode(tracer, registry):
            started = time.perf_counter()
            result = _sweep(graph, delta)
            best = min(best, time.perf_counter() - started)
        if scores is None:
            scores = result
            if isinstance(tracer, Tracer):
                spans = len(tracer.drain())
                metrics_payloads = len(registry.payloads())
    return best, scores, spans, metrics_payloads


def run(repeats: int, write_json: bool) -> dict:
    trace = presets.load("facebook", scale=0.25, seed=3)
    delta = presets.snapshot_delta("facebook", 0.25)
    events = list(trace.edges())

    ref_s, ref_scores, _, _ = _time_mode(
        events, delta, lambda: (_RefTracer(), _RefRegistry()), repeats
    )
    dis_s, dis_scores, _, _ = _time_mode(
        events, delta, lambda: (telemetry.NULL_TRACER, telemetry.NULL_REGISTRY), repeats
    )
    ena_s, ena_scores, spans, payloads = _time_mode(
        events, delta, lambda: (Tracer(), MetricsRegistry()), repeats
    )

    # Parity before any number is trusted: telemetry must never perturb
    # scientific output, in any mode.
    assert len(ref_scores) == len(dis_scores) == len(ena_scores)
    for ref, dis, ena in zip(ref_scores, dis_scores, ena_scores):
        assert ref.tobytes() == dis.tobytes() == ena.tobytes(), (
            "telemetry mode changed metric scores"
        )

    overhead_disabled = (dis_s - ref_s) / ref_s
    overhead_enabled = (ena_s - ref_s) / ref_s
    within_budget = dis_s <= ref_s * (1.0 + MAX_DISABLED_OVERHEAD) + ABS_SLACK_S
    assert within_budget, (
        f"disabled-telemetry overhead {overhead_disabled:+.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget "
        f"(reference {ref_s:.4f}s, disabled {dis_s:.4f}s)"
    )

    entry = {
        "label": "smoke",
        "dataset": "facebook",
        "scale": 0.25,
        "nodes": trace.num_nodes,
        "edges": trace.num_edges,
        "repeats": repeats,
        "reference_s": round(ref_s, 4),
        "disabled_s": round(dis_s, 4),
        "enabled_s": round(ena_s, 4),
        "overhead_disabled": round(overhead_disabled, 4),
        "overhead_enabled": round(overhead_enabled, 4),
        "overhead_budget": MAX_DISABLED_OVERHEAD,
        "enabled_spans": spans,
        "enabled_metric_series": payloads,
    }
    print(
        f"[smoke] reference {ref_s:.4f}s, disabled {dis_s:.4f}s "
        f"({overhead_disabled:+.1%}), enabled {ena_s:.4f}s "
        f"({overhead_enabled:+.1%}); {spans} spans, "
        f"{payloads} metric series when enabled"
    )

    report = build_report("telemetry", [entry])
    if write_json:
        write_report(
            report,
            line_formatter=lambda e: (
                f"{e['label']:>6}: disabled {e['overhead_disabled']:+.1%} "
                f"vs reference (budget {e['overhead_budget']:.0%}), "
                f"enabled {e['overhead_enabled']:+.1%}, "
                f"{e['enabled_spans']} spans recorded"
            ),
        )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats, parity + budget still asserted, no JSON rewrite",
    )
    args = parser.parse_args()
    run(repeats=3 if args.smoke else 7, write_json=not args.smoke)


if __name__ == "__main__":
    main()
