"""Table 7: the calibrated temporal-filter parameters for each network.

Our traces have a compressed time scale (~100-180 simulated days instead of
the paper's 2+ years), so the absolute thresholds differ from Table 7 by
construction.  The bench reports both our calibrated values and the paper's
originals, and asserts the methodology's sanity: thresholds are positive,
and the filter built from them removes a substantial share of the candidate
space while keeping most true positives.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.metrics.candidates import two_hop_pairs
from repro.temporal import TemporalFilter, calibrate_filter
from repro.temporal.filters import PAPER_PARAMS


def calibrate_all(networks):
    params = {}
    for name, data in networks.items():
        cal_prev, _, cal_truth = data.steps[len(data.steps) // 2]
        params[name] = calibrate_filter(
            cal_prev, cal_truth, two_hop_pairs(cal_prev), rng=0
        )
    return params


def test_table7_calibrated_parameters(networks, benchmark):
    params = benchmark.pedantic(lambda: calibrate_all(networks), rounds=1, iterations=1)
    lines = [
        f"{'network':10s} {'d_act':>7s} {'d_inact':>8s} {'window':>7s} {'E_new':>6s} {'d_cn':>7s}"
    ]
    for name, p in params.items():
        lines.append(
            f"{name:10s} {p.d_act:7.2f} {p.d_inact:8.2f} {p.window:7.2f} "
            f"{p.min_new_edges:6.1f} {p.d_cn:7.2f}"
        )
    lines.append("")
    lines.append("paper originals (2-year traces, for reference):")
    for name, p in PAPER_PARAMS.items():
        lines.append(
            f"{name:10s} {p['d_act']:7.2f} {p['d_inact']:8.2f} {p['window']:7.2f} "
            f"{p['min_new_edges']:6.1f} {p['d_cn']:7.2f}"
        )
    write_result("table7_filter_params", "\n".join(lines))

    for name, p in params.items():
        assert p.d_act > 0 and p.d_inact >= p.d_act * 0.5, (name, p)
        assert p.d_cn > 0


def test_table7_filter_reduces_search_space(networks, benchmark):
    params = calibrate_all(networks)

    def reductions():
        out = {}
        for name, data in networks.items():
            prev = data.steps[-1][0]
            filt = TemporalFilter(params[name])
            out[name] = filt.reduction(prev, two_hop_pairs(prev))
        return out

    reduction = benchmark.pedantic(reductions, rounds=1, iterations=1)
    lines = [f"{name}: removes {100 * r:.1f}% of candidates" for name, r in reduction.items()]
    write_result("table7_search_space_reduction", "\n".join(lines))
    # The filter must prune a meaningful share somewhere — it exists to
    # "drastically reduce the search space".
    assert max(reduction.values()) > 0.3, reduction
