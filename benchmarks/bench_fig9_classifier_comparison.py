"""Figure 9: accuracy ratio of the four classifiers (RF, NB, LR, SVM) on
Facebook, at undersampling ratios 1:1 and 1:50.

Instead of the paper's single instances (too noisy at this scale), the
bench runs each classifier over every consecutive snapshot triple of the
Facebook sequence (train on ``G_{t-2} -> G_{t-1}``, test on
``G_{t-1} -> G_t``) and averages — the classifier analogue of the Fig. 5
sequence experiment.

Shape targets from the paper:
- SVM is the best (or tied-best) classifier at the realistic ratio;
- moving from balanced 1:1 to realistic 1:50 helps SVM;
- NB / RF do not decisively beat SVM.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.classify.sequence import evaluate_classifier_sequence

CLASSIFIERS = ("RF", "NB", "LR", "SVM")
THETAS = {"1:1": 1.0, "1:50": 1 / 50}


def run_sequence_comparison(snapshots, seeds=(0, 1)):
    table = {}
    for label, theta in THETAS.items():
        for clf in CLASSIFIERS:
            ratios = []
            for seed in seeds:
                results = evaluate_classifier_sequence(
                    clf, snapshots, theta=theta, seed=seed
                )
                ratios.extend(r.ratio for r in results)
            table[(clf, label)] = float(np.mean(ratios)) if ratios else 0.0
    return table


def test_fig9_classifier_comparison(networks, benchmark):
    # The last 8 snapshots (7 triples) of the Facebook sequence.
    snapshots = networks["facebook"].snapshots[-8:]
    table = benchmark.pedantic(
        lambda: run_sequence_comparison(snapshots), rounds=1, iterations=1
    )
    lines = [f"{'clf':5s} {'1:1':>10s} {'1:50':>10s}"]
    for clf in CLASSIFIERS:
        lines.append(
            f"{clf:5s} {table[(clf, '1:1')]:10.2f} {table[(clf, '1:50')]:10.2f}"
        )
    write_result("fig9_classifier_comparison", "\n".join(lines))

    ranked_at_50 = sorted(CLASSIFIERS, key=lambda c: -table[(c, "1:50")])
    # SVM (or its near-twin LR) leads at the realistic ratio.
    assert ranked_at_50[0] in ("SVM", "LR") or ranked_at_50[1] in ("SVM", "LR"), table
    # The realistic ratio does not hurt SVM.
    assert table[("SVM", "1:50")] >= 0.5 * table[("SVM", "1:1")]
    # NB and RF do not decisively beat SVM (the paper's "consistently
    # poor" at this scale relaxes to "no decisive win").
    for weak in ("NB", "RF"):
        assert table[(weak, "1:50")] <= 1.5 * table[("SVM", "1:50")], table
