"""Table 2: statistics of the three datasets.

Regenerates the start/end node and edge counts, snapshot delta and snapshot
count for each (synthetic) trace, and checks the paper's sequencing rules:
more than 15 snapshots, constant edge delta.
"""

import numpy as np

from benchmarks.conftest import SCALE, SEED, write_result
from repro.generators import presets


def test_table2_dataset_statistics(networks, benchmark):
    def summarise():
        rows = []
        for name, data in networks.items():
            first, last = data.snapshots[0], data.snapshots[-1]
            delta = presets.snapshot_delta(name, SCALE)
            rows.append(
                (
                    name,
                    first.num_nodes,
                    first.num_edges,
                    last.num_nodes,
                    last.num_edges,
                    delta,
                    len(data.snapshots),
                )
            )
        return rows

    rows = benchmark(summarise)
    lines = [
        f"{'graph':10s} {'n0':>7s} {'e0':>8s} {'nT':>7s} {'eT':>8s} {'delta':>6s} {'snaps':>6s}"
    ]
    for row in rows:
        lines.append(
            f"{row[0]:10s} {row[1]:7d} {row[2]:8d} {row[3]:7d} {row[4]:8d} "
            f"{row[5]:6d} {row[6]:6d}"
        )
    write_result("table2_datasets", "\n".join(lines))

    for name, n0, e0, nT, eT, delta, snaps in rows:
        assert snaps > 15, f"{name}: need >15 snapshots (Table 2 rule)"
        assert eT > e0 and nT >= n0


def test_table2_trace_generation_cost(benchmark):
    """Times regenerating the Facebook-like trace from scratch."""
    benchmark.pedantic(
        lambda: presets.facebook_like(scale=min(SCALE, 0.5), seed=SEED),
        rounds=1,
        iterations=1,
    )


def test_table2_constant_delta_invariant(networks, benchmark):
    def check():
        for data in networks.values():
            cutoffs = [s.cutoff for s in data.snapshots]
            deltas = set(np.diff(cutoffs).tolist())
            assert len(deltas) == 1
        return True

    assert benchmark(check)
