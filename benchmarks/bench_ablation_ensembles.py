"""Ablation: do larger / boosted ensembles beat the SVM?

The paper states that "more complex techniques, e.g. larger ensemble
methods do not produce noticeable improvements in accuracy" (Section 1).
This bench puts AdaBoost and gradient boosting through the exact pipeline
the four paper classifiers use and checks that neither *noticeably*
outperforms the SVM (noticeable = more than 2x its mean accuracy ratio,
a deliberately generous bar given per-step noise at this scale).
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.classify import ClassificationPredictor

MODELS = ("SVM", "RF", "AdaBoost", "GBT")


def run_models(instances, theta=1 / 50, seeds=2):
    out = {}
    for name in MODELS:
        ratios = []
        for instance in instances:
            for seed in range(seeds):
                predictor = ClassificationPredictor(name, theta=theta, seed=seed)
                ratios.append(predictor.evaluate_instance(instance, rng=seed).ratio)
        out[name] = float(np.mean(ratios))
    return out


def test_ablation_ensembles_do_not_noticeably_help(
    classification_instances, benchmark
):
    results = benchmark.pedantic(
        lambda: run_models(classification_instances["facebook"]),
        rounds=1,
        iterations=1,
    )
    lines = [f"{name:10s} {ratio:8.2f}" for name, ratio in results.items()]
    write_result("ablation_ensembles", "\n".join(lines))

    svm = results["SVM"]
    for name in ("RF", "AdaBoost", "GBT"):
        assert results[name] <= max(2.0 * svm, svm + 2.0), (name, results)
