"""Columnar-core scaling benchmark: old representation vs new, three sizes.

Times the three paths the columnar refactor changed, at three trace sizes,
against an inline reimplementation of the previous representation
(dict-of-sets snapshot rebuilds, per-pair Python dict indexing, dense n^2
candidate masks):

- **snapshot-sequence construction** — legacy replays the event stream from
  event 0 for every cutoff (O(T*E) Python dict work); the columnar core
  builds one trace-level stream index and derives each snapshot's node set,
  edge columns, and CSR structure with vectorised kernels;
- **candidate enumeration** — legacy materialises dense ``A``/``A^2``
  boolean masks (O(n^2) float64/bool temporaries); the new path stays on
  sparse ``A^2`` structure and triangular-index arithmetic.  Peak heap for
  both is recorded with ``tracemalloc`` — this is the "dense O(n^2) buffers
  eliminated" number;
- **end-to-end metric sweep** — fit + score of a neighbourhood metric (CN,
  2-hop candidates) and a global metric (PA, all non-edge candidates) on
  every prediction step, where the legacy side pays the legacy snapshot
  build, dense enumeration, and per-pair dict-lookup scoring, and the new
  side runs the actual library code;
- **enumeration strategies** — each of the three density-adaptive
  candidate enumerations (sparse / dense / blocked) forced in turn via
  ``REPRO_ENUM_STRATEGY``, parity-checked against each other, with the
  auto-chosen strategy and the measured per-strategy timings (the
  crossover data the thresholds in ``repro.metrics.candidates`` encode)
  recorded per size;
- **full metric sweep** — all registered metrics (18) scored once through
  the legacy per-metric ``score()`` path (each neighbourhood metric builds
  its own ``A @ diag(w) @ A``) and once through the batched kernel layer
  (``score_pairs``: one shared common-neighbour expansion per block).
  Model fits run *outside* both timed passes, so the ratio isolates
  scoring.  Scores are asserted **bitwise identical** between passes
  before the timing is trusted.

Both sides are checked pair-for-pair and score-for-score identical before
any timing is trusted.  Results go to ``BENCH_core.json`` at the repo root
(the perf trajectory file) and ``benchmarks/results/core_scaling.txt``.
Full (non-smoke) runs additionally enforce the acceptance floors: 2-hop
enumeration speedup >= 1.0 on the dense facebook sizes and >= 5.0 on the
sparse youtube size; full-sweep kernel speedup >= 2.0 on the sparse preset
and >= 1.0 (plus bitwise parity) on the dense presets.  The asymmetry is
Amdahl, not a regression: on a small dense snapshot the per-metric
``A @ diag(w) @ A`` products the kernel eliminates are already cheap
(~20 ms each at n = 850, 4% density) while the global metrics
(Katz, Rescal, PPR, ...) gather identically in both passes, so the
batched expansion can only approach ~1.3x there.  On the sparse preset the
per-metric sparse products are the dominant cost (hub rows make ``A^2``
expensive) and the shared expansion pays off at 4x+.  The dense presets'
headline win is the dense enumeration strategy (two-hop floor above).

Usage::

    PYTHONPATH=src python benchmarks/bench_core_scaling.py          # full, writes BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core_scaling.py --smoke  # smallest size only, no JSON (CI)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np
import scipy.sparse as sp

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import build_report, write_report
from repro.generators import presets
from repro.graph.dyngraph import TemporalGraph
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics.base import all_metric_names, get_metric
from repro.metrics.candidates import (
    ENUM_STRATEGIES,
    candidate_pairs,
    choose_enumeration_strategy,
)
from repro.metrics.kernels import score_pairs

#: (label, preset, scale) — three sizes of the dense friendship trace, plus
#: the sparse subscription trace where the dense n^2 candidate buffers used
#: to dominate (n = 2600 -> two dense float64 matrices = ~108 MB per
#: enumeration in the old representation).
SIZES = (
    ("small", "facebook", 0.25),
    ("medium", "facebook", 0.5),
    ("large", "facebook", 1.0),
    ("large-sparse", "youtube", 1.0),
)


# ---------------------------------------------------------------------------
# Legacy representation (inline reimplementation of the pre-columnar core)
# ---------------------------------------------------------------------------
class LegacySnapshot:
    """Dict-of-sets snapshot rebuilt from event 0, as the old core did."""

    def __init__(self, events, cutoff):
        adj: dict[int, set[int]] = {}
        for u, v, _t in events[:cutoff]:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        self.adj = adj
        self.node_list = sorted(adj)
        self.node_pos = {u: i for i, u in enumerate(self.node_list)}
        self.time = events[cutoff - 1][2]

    def adjacency_matrix(self) -> sp.csr_matrix:
        # Old path: CSR assembled from Python lists, edge by edge.
        rows, cols = [], []
        for u, neigh in self.adj.items():
            i = self.node_pos[u]
            for v in neigh:
                rows.append(i)
                cols.append(self.node_pos[v])
        n = len(self.node_list)
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix((data, (rows, cols)), shape=(n, n))

    def degree_array(self) -> np.ndarray:
        return np.asarray(
            [len(self.adj[u]) for u in self.node_list], dtype=np.float64
        )


def legacy_two_hop_pairs(snapshot: LegacySnapshot, dense: np.ndarray) -> np.ndarray:
    """Dense-mask enumeration: the old O(n^2)-memory candidate path."""
    a2 = dense @ dense
    mask = np.triu((a2 > 0) & (dense == 0), k=1)
    rows, cols = np.nonzero(mask)
    ids = np.asarray(snapshot.node_list, dtype=np.int64)
    return np.column_stack((ids[rows], ids[cols]))


def legacy_all_nonedge_pairs(snapshot: LegacySnapshot, dense: np.ndarray) -> np.ndarray:
    mask = np.triu(dense == 0, k=1)
    rows, cols = np.nonzero(mask)
    ids = np.asarray(snapshot.node_list, dtype=np.int64)
    return np.column_stack((ids[rows], ids[cols]))


def legacy_pairs_to_indices(snapshot: LegacySnapshot, pairs: np.ndarray):
    """Per-pair Python dict lookups — the old ``pairs_to_indices``."""
    pos = snapshot.node_pos
    rows = np.fromiter(
        (pos[int(u)] for u in pairs[:, 0]), dtype=np.int64, count=len(pairs)
    )
    cols = np.fromiter(
        (pos[int(v)] for v in pairs[:, 1]), dtype=np.int64, count=len(pairs)
    )
    return rows, cols


# ---------------------------------------------------------------------------
# Benchmark sections
# ---------------------------------------------------------------------------
def bench_snapshot_sequence(trace: TemporalGraph, delta: int) -> dict:
    """Both worlds start from an existing trace; what is timed is the
    per-snapshot structure build (node set, adjacency, degrees)."""
    events = list(trace.edges())
    cutoffs = [s.cutoff for s in snapshot_sequence(trace, delta)]

    started = time.perf_counter()
    legacy = [LegacySnapshot(events, c) for c in cutoffs]
    for snap in legacy:
        snap.adjacency_matrix()
        snap.degree_array()
    legacy_s = time.perf_counter() - started

    # Fresh trace built *outside* the timed region (the legacy side gets its
    # prebuilt event list for free too); cold column/stream-index caches.
    fresh = TemporalGraph.from_stream(events)
    started = time.perf_counter()
    columnar = snapshot_sequence(fresh, delta)
    for snap in columnar:
        snap.adjacency_matrix()
        snap.degree_array()
    columnar_s = time.perf_counter() - started

    for old, new in zip(legacy, columnar):
        assert old.node_list == new.node_list, "sequence parity broke"
    return {
        "snapshots": len(cutoffs),
        "legacy_s": round(legacy_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(legacy_s / columnar_s, 2),
    }


def _peak_bytes(fn) -> tuple[object, int]:
    tracemalloc.start()
    result = fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak


def bench_candidates(trace: TemporalGraph) -> dict:
    """Enumeration cost alone: both worlds get a prepared snapshot with its
    sparse CSR adjacency already built (both representations needed that for
    the metrics anyway); measured from CSR onward."""
    events = list(trace.edges())
    cutoff = trace.num_edges
    legacy_snap = LegacySnapshot(events, cutoff)
    legacy_csr = legacy_snap.adjacency_matrix()
    snap = Snapshot(trace, cutoff)
    snap.adjacency_matrix()

    def legacy_two_hop():
        # The old path's dense A and dense A @ A are the O(n^2) buffers the
        # refactor eliminates; they are charged to this run.
        return legacy_two_hop_pairs(legacy_snap, legacy_csr.toarray())

    def legacy_all():
        return legacy_all_nonedge_pairs(legacy_snap, legacy_csr.toarray())

    def columnar_two_hop():
        snap.cache.clear()  # cold A2 / candidate caches each run
        return candidate_pairs(snap, "two_hop")

    def columnar_all():
        snap.cache.clear()
        return candidate_pairs(snap, "all")

    sections = {}
    for key, legacy_fn, new_fn in (
        ("two_hop", legacy_two_hop, columnar_two_hop),
        ("all", legacy_all, columnar_all),
    ):
        legacy_pairs, legacy_peak = _peak_bytes(legacy_fn)
        started = time.perf_counter()
        legacy_fn()
        legacy_s = time.perf_counter() - started

        new_pairs, columnar_peak = _peak_bytes(new_fn)
        started = time.perf_counter()
        new_fn()
        columnar_s = time.perf_counter() - started

        assert np.array_equal(legacy_pairs, new_pairs), f"{key} parity broke"
        sections[key] = {
            "pairs": int(len(new_pairs)),
            "legacy_s": round(legacy_s, 4),
            "columnar_s": round(columnar_s, 4),
            "speedup": round(legacy_s / columnar_s, 2),
            "legacy_peak_bytes": int(legacy_peak),
            "columnar_peak_bytes": int(columnar_peak),
            "peak_reduction": round(legacy_peak / max(1, columnar_peak), 2),
        }
    return sections


def bench_metric_sweep(trace: TemporalGraph, delta: int) -> dict:
    """Fit + score CN (2-hop) and PA (all pairs) on every prediction step."""
    events = list(trace.edges())
    cutoffs = [s.cutoff for s in snapshot_sequence(trace, delta)][:-1]

    def run_legacy():
        out = []
        for cutoff in cutoffs:
            snap = LegacySnapshot(events, cutoff)
            a = snap.adjacency_matrix()
            dense = a.toarray()
            # CN on 2-hop candidates: score = A^2[u, v].
            a2 = (a @ a).tocsr()
            pairs = legacy_two_hop_pairs(snap, dense)
            if len(pairs):
                rows, cols = legacy_pairs_to_indices(snap, pairs)
                out.append(np.asarray(a2[rows, cols]).ravel().astype(np.float64))
            # PA on all non-edges: score = deg(u) * deg(v).
            deg = snap.degree_array()
            pairs = legacy_all_nonedge_pairs(snap, dense)
            if len(pairs):
                rows, cols = legacy_pairs_to_indices(snap, pairs)
                out.append(deg[rows] * deg[cols])
        return out

    fresh = TemporalGraph.from_stream(events)

    def run_columnar():
        out = []
        for cutoff in cutoffs:
            snap = Snapshot(fresh, cutoff)
            for name in ("CN", "PA"):
                metric = get_metric(name).fit(snap)
                pairs = candidate_pairs(snap, metric.candidate_strategy)
                if len(pairs):
                    out.append(metric.score(pairs))
        return out

    started = time.perf_counter()
    legacy_scores = run_legacy()
    legacy_s = time.perf_counter() - started

    started = time.perf_counter()
    columnar_scores = run_columnar()
    columnar_s = time.perf_counter() - started

    assert len(legacy_scores) == len(columnar_scores)
    for old, new in zip(legacy_scores, columnar_scores):
        np.testing.assert_allclose(old, new, err_msg="sweep scores drifted")
    return {
        "steps": len(cutoffs),
        "metrics": ["CN", "PA"],
        "legacy_s": round(legacy_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(legacy_s / columnar_s, 2),
    }


def bench_enum_strategies(trace: TemporalGraph) -> dict:
    """Force each enumeration strategy in turn; record the crossover data."""
    snap = Snapshot(trace, trace.num_edges)
    snap.adjacency_matrix()
    stats = snap.csr_stats()
    chosen = choose_enumeration_strategy(snap)
    out = {
        "chosen": chosen,
        "density": round(stats.density, 6),
        "two_hop_work": stats.two_hop_work,
    }
    baseline = None
    for strategy in ENUM_STRATEGIES:
        os.environ["REPRO_ENUM_STRATEGY"] = strategy
        try:
            snap.cache.clear()
            started = time.perf_counter()
            pairs = candidate_pairs(snap, "two_hop")
            elapsed = time.perf_counter() - started
        finally:
            del os.environ["REPRO_ENUM_STRATEGY"]
        if baseline is None:
            baseline = pairs
            out["pairs"] = int(len(pairs))
        else:
            assert np.array_equal(baseline, pairs), (
                f"{strategy} enumeration diverged from sparse"
            )
        out[f"{strategy}_s"] = round(elapsed, 4)
    out["chosen_vs_sparse"] = round(out["sparse_s"] / max(out[f"{chosen}_s"], 1e-9), 2)
    return out


def bench_full_sweep(trace: TemporalGraph) -> dict:
    """All registered metrics, legacy per-metric score vs batched kernels.

    Every metric is fitted *before* either timed pass (warming the global
    models — eigendecompositions, PPR inverse, shortest paths — that both
    paths share identically), so the two timings isolate scoring: the
    legacy pass pays each neighbourhood metric's lazy ``A @ diag(w) @ A``
    build plus its gather, the kernel pass pays one shared expansion per
    block plus per-metric segment sums.  Scores must match bitwise.
    """
    snap = Snapshot(trace, trace.num_edges)
    names = sorted(all_metric_names())
    metrics = {name: get_metric(name).fit(snap) for name in names}
    pairs_by_strategy = {
        strategy: candidate_pairs(snap, strategy)
        for strategy in ("two_hop", "all")
    }

    started = time.perf_counter()
    kernel_scores = {
        name: score_pairs(
            metric, snap, pairs_by_strategy[metric.candidate_strategy]
        )
        for name, metric in metrics.items()
    }
    kernel_s = time.perf_counter() - started

    started = time.perf_counter()
    legacy_scores = {
        name: np.asarray(
            metric.score(pairs_by_strategy[metric.candidate_strategy]),
            dtype=np.float64,
        )
        for name, metric in metrics.items()
    }
    legacy_s = time.perf_counter() - started

    for name in names:
        assert np.array_equal(legacy_scores[name], kernel_scores[name]), (
            f"full-sweep parity broke for {name}"
        )
    return {
        "metrics": len(names),
        "two_hop_pairs": int(len(pairs_by_strategy["two_hop"])),
        "all_pairs": int(len(pairs_by_strategy["all"])),
        "legacy_s": round(legacy_s, 4),
        "kernel_s": round(kernel_s, 4),
        "speedup": round(legacy_s / kernel_s, 2),
        "parity": "bitwise",
    }


def _summary_line(e: dict) -> str:
    line = (
        f"{e['label']:>6} (n={e['nodes']}, E={e['edges']}): "
        f"seq {e['snapshot_sequence']['speedup']}x, "
        f"two-hop {e['candidate_enumeration']['two_hop']['speedup']}x "
        f"({e['enumeration_strategies']['chosen']}), "
        f"all-pairs peak mem "
        f"{e['candidate_enumeration']['all']['peak_reduction']}x smaller, "
        f"sweep {e['metric_sweep']['speedup']}x"
    )
    if "metric_sweep_full" in e:
        line += f", full-sweep {e['metric_sweep_full']['speedup']}x"
    return line


#: sizes that get the (heavier) all-registered-metrics sweep: one dense
#: preset + one sparse preset, per the acceptance criteria.
FULL_SWEEP_LABELS = frozenset({"small", "large", "large-sparse"})


def _check_floors(sizes: "list[dict]") -> None:
    """Acceptance floors, enforced on full runs before anything is written."""
    for e in sizes:
        two_hop = e["candidate_enumeration"]["two_hop"]["speedup"]
        floor = 1.0 if e["dataset"] == "facebook" else 5.0
        assert two_hop >= floor, (
            f"{e['label']}: 2-hop enumeration speedup {two_hop} < {floor}"
        )
        full = e.get("metric_sweep_full")
        if full is not None:
            # Dense presets are Amdahl-limited (see module docstring): the
            # matrix builds the kernel removes are already cheap there, so
            # the floor is parity + no-regression; the sparse preset is
            # where the shared expansion must win outright.
            sweep_floor = 2.0 if e["dataset"] != "facebook" else 1.0
            assert full["speedup"] >= sweep_floor, (
                f"{e['label']}: full-sweep kernel speedup "
                f"{full['speedup']} < {sweep_floor}"
            )
            assert full["parity"] == "bitwise", (
                f"{e['label']}: full-sweep parity {full['parity']!r}"
            )


def run(scales, write_json: bool) -> dict:
    sizes = []
    for label, dataset, scale in scales:
        trace = presets.load(dataset, scale=scale, seed=3)
        delta = presets.snapshot_delta(dataset, scale)
        entry = {
            "label": label,
            "dataset": dataset,
            "scale": scale,
            "nodes": trace.num_nodes,
            "edges": trace.num_edges,
            "snapshot_sequence": bench_snapshot_sequence(trace, delta),
            "candidate_enumeration": bench_candidates(trace),
            "enumeration_strategies": bench_enum_strategies(trace),
            "metric_sweep": bench_metric_sweep(trace, delta),
        }
        if label in FULL_SWEEP_LABELS:
            entry["metric_sweep_full"] = bench_full_sweep(trace)
        sizes.append(entry)
        print(f"[{label}] nodes={entry['nodes']} edges={entry['edges']}")
        for section in (
            "snapshot_sequence",
            "candidate_enumeration",
            "enumeration_strategies",
            "metric_sweep",
            "metric_sweep_full",
        ):
            if section in entry:
                print(f"  {section}: {entry[section]}")

    if write_json:
        # Smoke runs (CI) check parity only; full runs enforce the perf
        # floors the PR acceptance criteria pin.
        _check_floors(sizes)
    report = build_report("core_scaling", sizes)
    if write_json:
        write_report(report, line_formatter=_summary_line, json_stem="core")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size only, parity-checked, no BENCH_core.json rewrite",
    )
    args = parser.parse_args()
    scales = SIZES[:1] if args.smoke else SIZES
    run(scales, write_json=not args.smoke)


if __name__ == "__main__":
    main()
