"""Ablations of the paper's evaluation-protocol choices (Sections 2, 4.1).

Two deliberate choices in the paper's methodology are probed here:

1. **Task protocol** — the paper predicts *future* links rather than
   detecting *missing* links (Section 2).  The bench runs both protocols
   with the same metric and shows the missing-link task is systematically
   easier, i.e. numbers from the older missing-link literature do not
   transfer.
2. **Evaluation statistic** — the paper uses the top-k accuracy ratio
   rather than AUC (Section 4.1).  The bench computes both and reports how
   the metric ranking shifts; AUC, judging the whole ranked list, is far
   more forgiving of metrics whose *top* of the list is weak.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.aucmode import auc_ranking
from repro.eval.experiment import evaluate_step
from repro.eval.missing import missing_vs_future

METRICS = ("RA", "BRA", "JC", "LP", "LRW")


def test_ablation_missing_vs_future(networks, benchmark):
    data = networks["facebook"]
    prev, _, truth = data.steps[-1]

    def run():
        rows = {}
        for metric in METRICS:
            missing, future = [], []
            for seed in range(3):
                m, f = missing_vs_future(metric, prev, truth, rng=seed)
                missing.append(m)
                future.append(f)
            rows[metric] = (float(np.mean(missing)), float(np.mean(future)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'metric':8s} {'missing':>9s} {'future':>9s}"]
    for metric, (m, f) in rows.items():
        lines.append(f"{metric:8s} {m:9.2f} {f:9.2f}")
    write_result("ablation_missing_vs_future", "\n".join(lines))

    easier = sum(1 for m, f in rows.values() if m > f)
    assert easier >= len(rows) - 1, rows


def test_ablation_auc_vs_accuracy_ratio(networks, benchmark):
    data = networks["facebook"]
    prev, _, truth = data.steps[-1]

    def run():
        auc = auc_ranking(METRICS, prev, truth, rng=0)
        ratio = {
            metric: float(
                np.mean(
                    [
                        evaluate_step(metric, prev, truth, rng=seed).ratio
                        for seed in range(3)
                    ]
                )
            )
            for metric in METRICS
        }
        return auc, ratio

    auc, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'metric':8s} {'AUC':>7s} {'ratio':>9s}"]
    for metric in METRICS:
        lines.append(f"{metric:8s} {auc[metric]:7.3f} {ratio[metric]:9.2f}")
    write_result("ablation_auc_vs_ratio", "\n".join(lines))

    # Every neighbourhood metric beats chance under AUC.
    for metric in METRICS:
        assert auc[metric] > 0.5, (metric, auc)
    # AUC compresses differences: its best/worst spread is far narrower than
    # the accuracy ratio's, which is the paper's reason for not using it.
    auc_spread = max(auc.values()) / max(1e-9, min(auc.values()))
    positive_ratios = [v for v in ratio.values() if v > 0]
    if len(positive_ratios) >= 2:
        ratio_spread = max(positive_ratios) / min(positive_ratios)
        assert auc_spread < max(2.0, ratio_spread), (auc_spread, ratio_spread)
