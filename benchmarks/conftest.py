"""Shared fixtures for the benchmark suite.

Every bench regenerates one table or figure of the paper.  The expensive
ingredients — the three synthetic traces, their snapshot sequences, and the
full metric sweep behind Figs. 5-8 and Tables 4-5 — are computed once per
session here and shared.

Environment knobs:

- ``REPRO_SCALE``  (default 0.75): multiplies trace sizes.
- ``REPRO_STEPS``  (default 6): prediction steps evaluated per network.
- ``REPRO_SEED``   (default 3): trace generation seed.
- ``REPRO_JOBS``   (default 1): worker processes for the metric sweep.
  Each sweep cell seeds its own RNG (``default_rng(1000 + step)``), so
  any job count produces identical sweep results.

Results are also written to ``benchmarks/results/*.txt`` so the tables
survive pytest's output capture.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.classify import sampled_instance
from repro.eval.experiment import MetricStepResult, evaluate_step, prediction_steps
from repro.generators import presets
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics import FIGURE5_METRICS
from repro.metrics.base import get_metric
from repro.metrics.candidates import prewarm_candidate_caches
from repro.utils.pairs import Pair

SCALE = float(os.environ.get("REPRO_SCALE", "0.75"))
STEPS = int(os.environ.get("REPRO_STEPS", "6"))
SEED = int(os.environ.get("REPRO_SEED", "3"))
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

RESULTS_DIR = Path(__file__).parent / "results"

NETWORKS = ("facebook", "renren", "youtube")


def write_result(name: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}")


@dataclass
class NetworkData:
    """One network's trace, snapshot sequence, and prediction steps."""

    name: str
    trace: object
    snapshots: list[Snapshot]
    steps: list[tuple[Snapshot, Snapshot, set[Pair]]]
    eval_indices: list[int]  # which steps the sweep evaluates


def build_networks() -> dict[str, NetworkData]:
    """Deterministically rebuild the three traces from the env knobs.

    Called by the session fixture *and* by sweep worker processes: the
    traces are pure functions of (SCALE, SEED), so a worker reconstructing
    them locally sees byte-identical snapshots without any pickling.
    """
    out = {}
    for name in NETWORKS:
        trace = presets.load(name, scale=SCALE, seed=SEED)
        delta = presets.snapshot_delta(name, SCALE)
        snaps = snapshot_sequence(trace, delta, start=trace.num_edges // 3)
        steps = list(prediction_steps(snaps))
        idx = np.linspace(0, len(steps) - 1, min(STEPS, len(steps)), dtype=int)
        out[name] = NetworkData(
            name=name,
            trace=trace,
            snapshots=snaps,
            steps=steps,
            eval_indices=[int(i) for i in idx],
        )
    return out


@pytest.fixture(scope="session")
def networks() -> dict[str, NetworkData]:
    """The three calibrated traces with their snapshot sequences."""
    return build_networks()


def _sweep_cell(data: NetworkData, metric: str, i: int) -> MetricStepResult:
    """One sweep evaluation; the per-cell RNG makes cells order-free."""
    prev, _, truth = data.steps[i]
    return evaluate_step(metric, prev, truth, rng=np.random.default_rng(1000 + i), step=i)


#: per-worker rebuilt networks for the parallel sweep (REPRO_JOBS > 1).
_WORKER_NETWORKS: "dict[str, NetworkData] | None" = None


def _init_sweep_worker() -> None:
    global _WORKER_NETWORKS
    _WORKER_NETWORKS = build_networks()
    strategies = tuple(get_metric(m).candidate_strategy for m in FIGURE5_METRICS)
    for data in _WORKER_NETWORKS.values():
        for i in data.eval_indices:
            prewarm_candidate_caches(data.steps[i][0], strategies)


def _run_sweep_cell(cell: "tuple[str, str, int]") -> MetricStepResult:
    name, metric, i = cell
    return _sweep_cell(_WORKER_NETWORKS[name], metric, i)


@pytest.fixture(scope="session")
def metric_sweep(networks) -> dict[str, dict[str, list[MetricStepResult]]]:
    """Every Figure 5 metric evaluated on every selected step of every
    network — the shared substrate of Figs. 5-8 and Tables 4-5.

    With ``REPRO_JOBS > 1`` the cells are dispatched over a process pool;
    each cell's RNG depends only on its step index, so the sweep is
    identical for any job count.
    """
    cells = [
        (name, metric, i)
        for name in networks
        for metric in FIGURE5_METRICS
        for i in networks[name].eval_indices
    ]
    if JOBS > 1:
        with ProcessPoolExecutor(
            max_workers=min(JOBS, len(cells)), initializer=_init_sweep_worker
        ) as pool:
            results = list(pool.map(_run_sweep_cell, cells, chunksize=4))
    else:
        results = [_sweep_cell(networks[name], metric, i) for name, metric, i in cells]
    sweep: dict[str, dict[str, list[MetricStepResult]]] = {}
    for (name, metric, _i), result in zip(cells, results):
        sweep.setdefault(name, {}).setdefault(metric, []).append(result)
    return sweep


@pytest.fixture(scope="session")
def classification_instances(networks):
    """Two Table 6 style train/test instances per network (small & large).

    Facebook keeps all nodes (p = 100%); the two larger networks are
    snowball-sampled, mirroring Section 5.1 (we use a larger p than the
    paper's 2% because the synthetic traces are ~1000x smaller).  Each
    instance uses a 3-snapshot horizon for both the training labels and the
    test ground truth: our snapshot deltas are ~1000x smaller than the
    paper's, so a single-delta horizon leaves too few positives for stable
    classifier experiments.
    """
    fractions = {"facebook": 1.0, "renren": 0.6, "youtube": 0.65}
    instances: dict[str, list] = {}
    for name, data in networks.items():
        snaps = data.snapshots
        eras = [(-10, -7, -4), (-7, -4, -1)]  # (train, label/test, truth)
        instances[name] = [
            sampled_instance(
                snaps[a], snaps[b], snaps[c], fraction=fractions[name], rng=SEED
            )
            for a, b, c in eras
        ]
    return instances
