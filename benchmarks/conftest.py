"""Shared fixtures for the benchmark suite.

Every bench regenerates one table or figure of the paper.  The expensive
ingredients — the three synthetic traces, their snapshot sequences, and the
full metric sweep behind Figs. 5-8 and Tables 4-5 — are computed once per
session here and shared.

Environment knobs:

- ``REPRO_SCALE``  (default 0.75): multiplies trace sizes.
- ``REPRO_STEPS``  (default 6): prediction steps evaluated per network.
- ``REPRO_SEED``   (default 3): trace generation seed.

Results are also written to ``benchmarks/results/*.txt`` so the tables
survive pytest's output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.classify import sampled_instance
from repro.eval.experiment import MetricStepResult, evaluate_step, prediction_steps
from repro.generators import presets
from repro.graph.snapshots import Snapshot, snapshot_sequence
from repro.metrics import FIGURE5_METRICS
from repro.utils.pairs import Pair

SCALE = float(os.environ.get("REPRO_SCALE", "0.75"))
STEPS = int(os.environ.get("REPRO_STEPS", "6"))
SEED = int(os.environ.get("REPRO_SEED", "3"))

RESULTS_DIR = Path(__file__).parent / "results"

NETWORKS = ("facebook", "renren", "youtube")


def write_result(name: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}")


@dataclass
class NetworkData:
    """One network's trace, snapshot sequence, and prediction steps."""

    name: str
    trace: object
    snapshots: list[Snapshot]
    steps: list[tuple[Snapshot, Snapshot, set[Pair]]]
    eval_indices: list[int]  # which steps the sweep evaluates


@pytest.fixture(scope="session")
def networks() -> dict[str, NetworkData]:
    """The three calibrated traces with their snapshot sequences."""
    out = {}
    for name in NETWORKS:
        trace = presets.load(name, scale=SCALE, seed=SEED)
        delta = presets.snapshot_delta(name, SCALE)
        snaps = snapshot_sequence(trace, delta, start=trace.num_edges // 3)
        steps = list(prediction_steps(snaps))
        idx = np.linspace(0, len(steps) - 1, min(STEPS, len(steps)), dtype=int)
        out[name] = NetworkData(
            name=name,
            trace=trace,
            snapshots=snaps,
            steps=steps,
            eval_indices=[int(i) for i in idx],
        )
    return out


@pytest.fixture(scope="session")
def metric_sweep(networks) -> dict[str, dict[str, list[MetricStepResult]]]:
    """Every Figure 5 metric evaluated on every selected step of every
    network — the shared substrate of Figs. 5-8 and Tables 4-5."""
    sweep: dict[str, dict[str, list[MetricStepResult]]] = {}
    for name, data in networks.items():
        sweep[name] = {}
        for metric in FIGURE5_METRICS:
            results = []
            for j, i in enumerate(data.eval_indices):
                prev, _, truth = data.steps[i]
                rng = np.random.default_rng(1000 + i)
                results.append(
                    evaluate_step(metric, prev, truth, rng=rng, step=i)
                )
            sweep[name][metric] = results
    return sweep


@pytest.fixture(scope="session")
def classification_instances(networks):
    """Two Table 6 style train/test instances per network (small & large).

    Facebook keeps all nodes (p = 100%); the two larger networks are
    snowball-sampled, mirroring Section 5.1 (we use a larger p than the
    paper's 2% because the synthetic traces are ~1000x smaller).  Each
    instance uses a 3-snapshot horizon for both the training labels and the
    test ground truth: our snapshot deltas are ~1000x smaller than the
    paper's, so a single-delta horizon leaves too few positives for stable
    classifier experiments.
    """
    fractions = {"facebook": 1.0, "renren": 0.6, "youtube": 0.65}
    instances: dict[str, list] = {}
    for name, data in networks.items():
        snaps = data.snapshots
        eras = [(-10, -7, -4), (-7, -4, -1)]  # (train, label/test, truth)
        instances[name] = [
            sampled_instance(
                snaps[a], snaps[b], snaps[c], fraction=fractions[name], rng=SEED
            )
            for a, b, c in eras
        ]
    return instances
