"""Extension bench: streaming vs batch candidate maintenance.

``IncrementalNeighborhood`` maintains the 2-hop candidate map in
``O(deg(u) + deg(v))`` per inserted edge; the batch pipeline recomputes
``A²`` per snapshot.  This bench times both on the same edge stream and
checks they agree — the point where streaming wins is the design argument
for the extension.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.graph.delta import IncrementalNeighborhood
from repro.graph.snapshots import Snapshot
from repro.metrics.candidates import two_hop_pairs


def test_incremental_matches_batch_on_preset(networks, benchmark):
    data = networks["facebook"]
    trace = data.trace
    edges = [(u, v) for u, v, _ in trace.edges()]

    def stream_everything():
        inc = IncrementalNeighborhood()
        inc.extend(edges)
        return inc

    inc = benchmark.pedantic(stream_everything, rounds=1, iterations=1)
    snapshot = Snapshot(trace, trace.num_edges)
    batch = {tuple(p) for p in two_hop_pairs(snapshot)}
    streaming = {tuple(p) for p in inc.two_hop_pairs()}
    assert streaming == batch
    write_result(
        "extension_incremental",
        f"edges streamed: {len(edges)}\n"
        f"2-hop candidates maintained: {len(streaming)}\n"
        f"agrees with batch A^2 enumeration: True",
    )


def test_incremental_update_cost_is_local(networks, benchmark):
    """Per-edge update touches only the endpoint neighbourhoods: inserting
    the last 10% of edges costs a small fraction of a full rebuild."""
    data = networks["facebook"]
    edges = [(u, v) for u, v, _ in data.trace.edges()]
    cut = int(len(edges) * 0.9)
    warm = IncrementalNeighborhood()
    warm.extend(edges[:cut])

    import copy
    import time

    def tail_updates():
        inc = copy.deepcopy(warm)
        inc.extend(edges[cut:])
        return inc

    benchmark.pedantic(tail_updates, rounds=1, iterations=1)

    # Manual timing for the comparison line (deepcopy excluded).
    inc = copy.deepcopy(warm)
    t0 = time.perf_counter()
    inc.extend(edges[cut:])
    tail_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    full = IncrementalNeighborhood()
    full.extend(edges)
    full_time = time.perf_counter() - t0
    write_result(
        "extension_incremental_cost",
        f"full rebuild: {full_time * 1000:.1f} ms\n"
        f"last-10% streaming update: {tail_time * 1000:.1f} ms",
    )
    assert tail_time < full_time
