"""Section 4.2 text: Pearson correlation between metric accuracy and the
2-hop edge ratio lambda_2.

The paper reports average correlations of 0.95 (Renren), 0.83 (YouTube)
and 0.81 (Facebook) between the top-6 metrics' *accuracy ratio* and
lambda_2.  At our ~1000x smaller scale the accuracy-ratio series is
dominated by the mechanical growth of the random-baseline denominator
(1 / candidate-pool size), so this bench correlates the *absolute
accuracy* — the component the 2-hop closure rate actually drives — against
lambda_2, averaged over 3 tie-breaking seeds per step.

Shape target: clearly positive average correlation for the top
neighbourhood metrics on the friendship networks.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.correlation import pearson, two_hop_edge_ratio
from repro.eval.experiment import evaluate_step

TOP_METRICS = ("RA", "BRA", "BCN", "BAA", "LP", "JC")


def correlation_for(data, seeds=3):
    lam, acc = [], {m: [] for m in TOP_METRICS}
    for i, (prev, _, truth) in enumerate(data.steps):
        lam.append(two_hop_edge_ratio(prev, truth))
        for metric in TOP_METRICS:
            values = [
                evaluate_step(metric, prev, truth, rng=s * 1000 + i).absolute
                for s in range(seeds)
            ]
            acc[metric].append(float(np.mean(values)))
    per_metric = {m: pearson(lam, series) for m, series in acc.items()}
    return lam, float(np.mean(list(per_metric.values()))), per_metric


def test_lambda2_correlation(networks, benchmark):
    results = benchmark.pedantic(
        lambda: {name: correlation_for(d) for name, d in networks.items()},
        rounds=1,
        iterations=1,
    )
    lines = []
    for name, (lam, avg, per_metric) in results.items():
        lines.append(
            f"{name}: lambda2 {lam[0]:.4f} -> {lam[-1]:.4f}, "
            f"top-metric avg Pearson = {avg:.3f}"
        )
        lines.append(
            "    " + " ".join(f"{m}:{c:+.2f}" for m, c in per_metric.items())
        )
    write_result("lambda2_correlation", "\n".join(lines))

    # Strong positive association on the friendship networks
    # (paper: 0.81 Facebook / 0.95 Renren).
    for name in ("facebook", "renren"):
        _, avg, _ = results[name]
        assert avg > 0.3, (name, avg)


def test_lambda2_facebook_declines(networks, benchmark):
    """The Facebook trace's lambda_2 declines (regional-sampling effect the
    paper describes), unlike the monotonically densifying Renren."""
    def series():
        data = networks["facebook"]
        return [two_hop_edge_ratio(p, t) for p, _, t in data.steps]

    lam = benchmark(series)
    assert lam[-1] < lam[0]
