"""Figure 5: accuracy ratio of all metric-based algorithms over snapshots.

Shape targets from the paper:
- every metric beats random prediction over the sequence (ratio > 1 on
  average, with the weakest — SP — allowed to sit near the random line);
- SP and PA are consistently among the weakest on the friendship networks;
- the common-neighbour family (BCN/BAA/BRA) is in the top group on
  Renren and Facebook;
- Rescal is in the top group on YouTube while JC and PPR collapse there.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.eval.experiment import evaluate_step
from repro.metrics import FIGURE5_METRICS


def mean_ratios(sweep, network):
    return {
        metric: float(np.mean([r.ratio for r in results]))
        for metric, results in sweep[network].items()
    }


def test_fig5_accuracy_ratio_series(networks, metric_sweep, benchmark):
    # Time one representative evaluation step (RA on the last facebook step).
    data = networks["facebook"]
    prev, _, truth = data.steps[-1]
    benchmark.pedantic(
        lambda: evaluate_step("RA", prev, truth, rng=0), rounds=1, iterations=1
    )

    lines = []
    for name in networks:
        lines.append(f"-- {name} (accuracy ratio per evaluated snapshot) --")
        for metric in FIGURE5_METRICS:
            series = " ".join(f"{r.ratio:9.2f}" for r in metric_sweep[name][metric])
            lines.append(f"{metric:8s} {series}")
    write_result("fig5_metric_accuracy", "\n".join(lines))


def test_fig5_all_beat_random_on_friendship(metric_sweep, benchmark):
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    ratios = mean_ratios(metric_sweep, "facebook")
    strong = [m for m in FIGURE5_METRICS if m not in ("SP",)]
    beating = [m for m in strong if ratios[m] > 1.0]
    assert len(beating) >= len(strong) - 2, ratios


def test_fig5_sp_and_pa_weak_on_friendship(metric_sweep, benchmark):
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    for network in ("facebook", "renren"):
        ratios = mean_ratios(metric_sweep, network)
        best = max(ratios.values())
        assert ratios["SP"] < 0.5 * best, (network, ratios)
        assert ratios["PA"] < best, (network, ratios)


def test_fig5_cn_family_top_group_on_friendship(metric_sweep, benchmark):
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    for network in ("facebook", "renren"):
        ratios = mean_ratios(metric_sweep, network)
        ranked = sorted(ratios, key=ratios.get, reverse=True)
        top_half = set(ranked[: len(ranked) // 2])
        assert top_half & {"BCN", "BAA", "BRA"}, (network, ranked)


def test_fig5_youtube_structure(metric_sweep, benchmark):
    benchmark(lambda: None)  # keep this shape test active under --benchmark-only
    ratios = mean_ratios(metric_sweep, "youtube")
    ranked = sorted(ratios, key=ratios.get, reverse=True)
    # Rescal in the top group; JC and SP at the bottom (paper Section 4.2).
    assert "Rescal" in ranked[:4], ranked
    assert ratios["JC"] <= 0.25 * max(ratios.values()), ratios
    assert ratios["SP"] <= 0.25 * max(ratios.values()), ratios
