"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` code path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
